package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/points"
	"repro/internal/serve"
)

// Counter names of the routing layer, reported by the router's /statsz.
const (
	// CtrRequests counts admitted /assign requests.
	CtrRequests = "fleet.requests"
	// CtrPoints counts query points across admitted requests.
	CtrPoints = "fleet.points"
	// CtrShardsPerQuery sums the distinct owning shards per query; divide
	// by CtrPoints for the mean fan-out. Strictly below the shard count
	// means routing is bounded, not broadcast.
	CtrShardsPerQuery = "fleet.shards.per.query"
	// CtrHedges counts hedged (duplicate) shard requests issued after the
	// p99-based delay; CtrHedgeWins counts those whose reply was used.
	CtrHedges    = "fleet.hedges"
	CtrHedgeWins = "fleet.hedge.wins"
	// CtrRetries counts failover re-sends after a replica failed.
	CtrRetries = "fleet.retries"
	// CtrFallbackBroadcasts counts exact-fallback rounds: a batch had at
	// least one query with no LSH candidate anywhere, so the router
	// broadcast an exact scan for those queries to every shard.
	CtrFallbackBroadcasts = "fleet.fallback.broadcasts"
	// CtrErrors counts /assign requests failed with a 5xx.
	CtrErrors = "fleet.errors"
	// CtrShed counts /assign requests rejected 429 because a shard shed.
	CtrShed = "fleet.shed"
	// CtrReplicaDeaths counts replicas declared dead (probe timeout or
	// transport failure); re-probes revive them.
	CtrReplicaDeaths = "fleet.replica.deaths"
)

// RouterConfig carries the routing knobs (README "Configuration reference",
// fleet.* rows).
type RouterConfig struct {
	// Manifest describes the fleet (required).
	Manifest *Manifest
	// Shards lists replica base URLs per shard, indexed like the ring:
	// Shards[s] holds at least one "host:port" for shard s (required, one
	// entry per manifest shard).
	Shards [][]string
	// HedgeDelay controls hedged shard requests: 0 (default) hedges after
	// the shard's observed p99 latency, a positive value after exactly
	// that delay, negative disables hedging.
	HedgeDelay time.Duration
	// Heartbeat is the liveness-probe interval (default 1s).
	Heartbeat time.Duration
	// DeadAfter declares a replica dead when no probe or request has
	// succeeded for this long (default 5s). Dead replicas receive no
	// traffic until a probe succeeds again.
	DeadAfter time.Duration
	// MaxRequestPoints bounds one /assign request (default 1024); keep it
	// equal to the shards' serve.max.points so limits agree fleet-wide.
	MaxRequestPoints int
	// ShardTimeout bounds one shard round-trip (default 30s).
	ShardTimeout time.Duration
	// ReadHeaderTimeout / IdleTimeout harden the router's own listener
	// exactly like serve.Config's fields (0 = 5s / 2m, negative disables).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (c *RouterConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return time.Second
}

func (c *RouterConfig) deadAfter() time.Duration {
	if c.DeadAfter > 0 {
		return c.DeadAfter
	}
	return 5 * time.Second
}

func (c *RouterConfig) maxRequestPoints() int {
	if c.MaxRequestPoints > 0 {
		return c.MaxRequestPoints
	}
	return 1024
}

func (c *RouterConfig) shardTimeout() time.Duration {
	if c.ShardTimeout > 0 {
		return c.ShardTimeout
	}
	return 30 * time.Second
}

// replica is one addressable copy of a shard's sub-model.
type replica struct {
	addr   string
	alive  atomic.Bool
	lastOK atomic.Int64 // unix nanos of the last successful probe/request
}

// shardClient fans requests of one shard across its replicas.
type shardClient struct {
	id       int
	replicas []*replica
	hist     serve.Hist    // per-shard round-trip latency, feeds hedge delay
	next     atomic.Uint64 // round-robin start index
}

// alivePick returns the shard's replicas ordered for this attempt: alive
// ones first starting round-robin, dead ones appended as a last resort (a
// "dead" replica may have just recovered; trying it beats failing).
func (sc *shardClient) alivePick() []*replica {
	n := len(sc.replicas)
	start := int(sc.next.Add(1)) % n
	out := make([]*replica, 0, n)
	var dead []*replica
	for i := 0; i < n; i++ {
		rep := sc.replicas[(start+i)%n]
		if rep.alive.Load() {
			out = append(out, rep)
		} else {
			dead = append(dead, rep)
		}
	}
	return append(out, dead...)
}

// Router is the fleet front end: it owns the public /assign contract,
// scatter-gathers shard-internal /fleet/assign calls to the owning shards,
// and merges their candidates bit-identically to a single full-model
// server. Create with NewRouter, then Start (or serve Handler directly).
type Router struct {
	cfg      RouterConfig
	layouts  *lsh.Layouts
	place    *Placement
	shards   []*shardClient
	counters *mapreduce.Counters
	hist     serve.Hist
	client   *http.Client
	draining atomic.Bool

	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener
	quit    chan struct{}
	probeWG sync.WaitGroup
	once    sync.Once
	shutErr error
}

// NewRouter validates cfg and builds the router (no socket yet, no probes
// running until Start).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("fleet: router needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Shards) != cfg.Manifest.Shards {
		return nil, fmt.Errorf("fleet: manifest names %d shards, router got %d replica sets",
			cfg.Manifest.Shards, len(cfg.Shards))
	}
	place, err := cfg.Manifest.Placement()
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		layouts:  cfg.Manifest.Layouts(),
		place:    place,
		counters: mapreduce.NewCounters(),
		client:   &http.Client{Timeout: cfg.shardTimeout()},
		quit:     make(chan struct{}),
	}
	for s, addrs := range cfg.Shards {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("fleet: shard %d has no replicas", s)
		}
		sc := &shardClient{id: s}
		for _, a := range addrs {
			rep := &replica{addr: a}
			rep.alive.Store(true) // optimistic until a probe says otherwise
			rep.lastOK.Store(time.Now().UnixNano())
			sc.replicas = append(sc.replicas, rep)
		}
		r.shards = append(r.shards, sc)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /assign", r.handleAssign)
	r.mux.HandleFunc("POST /ingest", r.handleIngest)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /statsz", r.handleStatsz)
	return r, nil
}

// Counters exposes the fleet.* counter set.
func (r *Router) Counters() *mapreduce.Counters { return r.counters }

// Handler returns the HTTP handler (for tests and embedding).
func (r *Router) Handler() http.Handler { return r.mux }

// CheckShards asks every replica's /statsz whether it serves the shard this
// router would route to it: a replica reporting a different shard id is a
// hard error (silent wrong answers), an unreachable one only a logged
// warning (it may still be starting).
func (r *Router) CheckShards(ctx context.Context) error {
	for _, sc := range r.shards {
		for _, rep := range sc.replicas {
			st, err := r.fetchStatsz(ctx, rep.addr)
			if err != nil {
				r.logf("fleet: shard %d replica %s unreachable for startup check: %v", sc.id, rep.addr, err)
				continue
			}
			if st.Shard == nil {
				return fmt.Errorf("fleet: replica %s reports no shard id (started without -shard?); expected shard %d", rep.addr, sc.id)
			}
			if *st.Shard != sc.id {
				return fmt.Errorf("fleet: replica %s serves shard %d, routed as shard %d", rep.addr, *st.Shard, sc.id)
			}
			if st.Model != nil && st.Model.N != 0 && st.Model.Dim != r.cfg.Manifest.Dim {
				return fmt.Errorf("fleet: replica %s serves dim %d, manifest says %d", rep.addr, st.Model.Dim, r.cfg.Manifest.Dim)
			}
		}
	}
	return nil
}

// Start listens on addr, starts the liveness prober, and serves until
// Shutdown.
func (r *Router) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	r.ln = ln
	r.httpSrv = &http.Server{
		Handler:           r.mux,
		ReadHeaderTimeout: routerTimeout(r.cfg.ReadHeaderTimeout, 5*time.Second),
		IdleTimeout:       routerTimeout(r.cfg.IdleTimeout, 2*time.Minute),
	}
	r.probeWG.Add(1)
	go r.prober()
	go r.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown
	r.logf("fleet: router listening on %s (%d shards, hedge=%s heartbeat=%s dead-after=%s)",
		ln.Addr(), len(r.shards), r.cfg.HedgeDelay, r.cfg.heartbeat(), r.cfg.deadAfter())
	return nil
}

// routerTimeout mirrors serve's knob convention: 0 default, negative off.
func routerTimeout(v, def time.Duration) time.Duration {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	}
	return def
}

// Addr returns the bound address after Start.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Shutdown stops the listener and the prober. Safe to call more than once.
func (r *Router) Shutdown(ctx context.Context) error {
	r.once.Do(func() {
		r.draining.Store(true)
		if r.httpSrv != nil {
			r.shutErr = r.httpSrv.Shutdown(ctx)
		}
		close(r.quit)
		r.probeWG.Wait()
	})
	return r.shutErr
}

// prober keeps replica liveness fresh: every heartbeat it probes each
// replica's /healthz concurrently; success revives the replica, and a
// replica with no success inside DeadAfter is declared dead (the same
// heartbeat/dead-node discipline the DFS namenode applies to datanodes).
func (r *Router) prober() {
	defer r.probeWG.Done()
	tick := time.NewTicker(r.cfg.heartbeat())
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
		}
		var wg sync.WaitGroup
		for _, sc := range r.shards {
			for _, rep := range sc.replicas {
				wg.Add(1)
				go func(sc *shardClient, rep *replica) {
					defer wg.Done()
					r.probe(sc, rep)
				}(sc, rep)
			}
		}
		wg.Wait()
	}
}

func (r *Router) probe(sc *shardClient, rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.heartbeat())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rep.addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	now := time.Now().UnixNano()
	if ok {
		rep.lastOK.Store(now)
		if !rep.alive.Swap(true) {
			r.logf("fleet: shard %d replica %s back alive", sc.id, rep.addr)
		}
		return
	}
	if now-rep.lastOK.Load() > int64(r.cfg.deadAfter()) && rep.alive.Swap(false) {
		r.counters.Add(CtrReplicaDeaths, 1)
		r.logf("fleet: shard %d replica %s declared dead", sc.id, rep.addr)
	}
}

// markFailed downs a replica immediately after a transport failure so the
// very next request fails over instead of re-timing-out; the prober revives
// it on its next successful /healthz.
func (r *Router) markFailed(sc *shardClient, rep *replica) {
	if rep.alive.Swap(false) {
		r.counters.Add(CtrReplicaDeaths, 1)
		r.logf("fleet: shard %d replica %s marked dead after request failure", sc.id, rep.addr)
	}
}

// callResult is one replica's answer to a shard call.
type callResult struct {
	attempt int
	resp    *serve.FleetAssignResponse
	status  int
	errMsg  string
	err     error
}

// callShard round-trips one /fleet/assign body to shard sc: round-robin
// over alive replicas, one hedged duplicate after the p99-based delay, and
// failover to the remaining replicas when an attempt fails. Returns the
// parsed reply, or the last failure's (status, message).
func (r *Router) callShard(sc *shardClient, body []byte) (*serve.FleetAssignResponse, int, string) {
	start := time.Now()
	reps := sc.alivePick()
	results := make(chan callResult, len(reps))
	attempt := 0
	send := func() {
		rep := reps[attempt]
		idx := attempt
		attempt++
		go func() {
			res := r.post(rep, body)
			res.attempt = idx
			if res.err != nil {
				r.markFailed(sc, rep)
			} else {
				rep.lastOK.Store(time.Now().UnixNano())
			}
			results <- res
		}()
	}
	send()
	var hedgeC <-chan time.Time
	hedgedAttempt := -1
	if d := r.hedgeDelay(sc); d > 0 && len(reps) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	lastStatus, lastMsg := http.StatusBadGateway, "no replica reachable"
	sawShed := false
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if attempt < len(reps) {
				r.counters.Add(CtrHedges, 1)
				hedgedAttempt = attempt
				send()
				pending++
			}
		case res := <-results:
			pending--
			if res.err == nil && res.status == http.StatusOK {
				if res.attempt == hedgedAttempt {
					r.counters.Add(CtrHedgeWins, 1)
				}
				sc.hist.Record(time.Since(start))
				return res.resp, http.StatusOK, ""
			}
			if res.err != nil {
				lastStatus, lastMsg = http.StatusBadGateway, fmt.Sprintf("shard %d replica unreachable: %v", sc.id, res.err)
			} else {
				lastStatus, lastMsg = res.status, res.errMsg
				if res.status == http.StatusTooManyRequests {
					sawShed = true
				}
			}
			// Failover: try the next untried replica as soon as an attempt
			// has definitively failed and nothing else is in flight.
			if pending == 0 && attempt < len(reps) {
				r.counters.Add(CtrRetries, 1)
				send()
				pending++
			}
		}
	}
	if sawShed {
		// Prefer reporting shed over a transport error: the caller can
		// retry after backoff, which is the more actionable signal.
		return nil, http.StatusTooManyRequests, "overloaded: admission queue full"
	}
	return nil, lastStatus, lastMsg
}

// hedgeDelay resolves the hedge trigger for a shard: the configured fixed
// delay, or (by default) the shard's observed p99 once enough samples
// exist, clamped to [1ms, 2s].
func (r *Router) hedgeDelay(sc *shardClient) time.Duration {
	if r.cfg.HedgeDelay != 0 {
		if r.cfg.HedgeDelay < 0 {
			return 0
		}
		return r.cfg.HedgeDelay
	}
	if sc.hist.Count() < 64 {
		return 0 // too few samples for a meaningful p99
	}
	d := sc.hist.Quantile(0.99)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// post issues one /fleet/assign attempt against one replica.
func (r *Router) post(rep *replica, body []byte) callResult {
	resp, err := r.client.Post("http://"+rep.addr+"/fleet/assign", "application/json", bytes.NewReader(body))
	if err != nil {
		return callResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return callResult{status: resp.StatusCode, errMsg: string(bytes.TrimRight(msg, "\n"))}
	}
	var out serve.FleetAssignResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return callResult{err: fmt.Errorf("bad shard reply: %w", err)}
	}
	return callResult{resp: &out, status: http.StatusOK}
}

// fetchStatsz GETs one replica's /statsz.
func (r *Router) fetchStatsz(ctx context.Context, addr string) (*serve.Statsz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statsz: HTTP %d", resp.StatusCode)
	}
	var st serve.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// assignRequest / assignResponse mirror the single-node /assign wire format
// exactly; the conformance tests compare raw response bytes.
type assignRequest struct {
	Points [][]float64 `json:"points"`
}

type assignResponse struct {
	Results []serve.Assignment `json:"results"`
}

// handleAssign is the public fleet entry point. The contract — request
// shape, validation errors, 429/500 semantics, response bytes — matches a
// single full-model server exactly; only /statsz tells the difference.
func (r *Router) handleAssign(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var body assignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if status, msg := serve.ValidatePoints(body.Points, r.cfg.Manifest.Dim, r.cfg.maxRequestPoints()); status != 0 {
		http.Error(w, msg, status)
		return
	}
	start := time.Now()
	out, status, msg := r.assign(body.Points)
	r.hist.Record(time.Since(start))
	r.counters.Add(CtrRequests, 1)
	r.counters.Add(CtrPoints, int64(len(body.Points)))
	if status != 0 {
		switch {
		case status == http.StatusTooManyRequests:
			r.counters.Add(CtrShed, 1)
			w.Header().Set("Retry-After", "1")
		case status >= 500:
			r.counters.Add(CtrErrors, 1)
		}
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(assignResponse{Results: out}) //nolint:errcheck
}

// shardBatch is the slice of a request routed to one shard.
type shardBatch struct {
	shard *shardClient
	idxs  []int // indices into the request's query list
	pts   [][]float64
	masks []uint64
	exact bool

	resp   *serve.FleetAssignResponse
	status int
	msg    string
}

// assign routes one validated batch: compute owners, scatter masked scans,
// merge, and broadcast the exact fallback for queries with no candidate
// anywhere. Returns the merged assignments or an HTTP (status, message).
func (r *Router) assign(pts [][]float64) ([]serve.Assignment, int, string) {
	nq := len(pts)
	// Owner masks: for query i, shardMasks[i][s] has bit j set when shard
	// s owns the bucket of layout j — query i's key k_j(q) resolved by the
	// placement (heavy-bucket overrides, then the ring). The shard scans
	// bucket k_j(q) minus rows already matched by an
	// earlier routed layout, so each global candidate is scanned exactly
	// once fleet-wide.
	batches := make(map[int]*shardBatch)
	var fanoutSum int64
	masks := make([]uint64, len(r.shards))
	for i, p := range pts {
		for s := range masks {
			masks[s] = 0
		}
		for j, key := range r.layouts.Keys(points.Vector(p)) {
			masks[r.place.Owner(key)] |= 1 << uint(j)
		}
		for s, mask := range masks {
			if mask == 0 {
				continue
			}
			fanoutSum++
			b := batches[s]
			if b == nil {
				b = &shardBatch{shard: r.shards[s]}
				batches[s] = b
			}
			b.idxs = append(b.idxs, i)
			b.pts = append(b.pts, p)
			b.masks = append(b.masks, mask)
		}
	}
	r.counters.Add(CtrShardsPerQuery, fanoutSum)

	if status, msg := r.scatter(batches); status != 0 {
		return nil, status, msg
	}

	// Merge: per query, the winner across owning shards is the candidate
	// with the smallest exact squared distance, ties to the lowest global
	// point ID — precisely the single-node scan order rule.
	out := make([]serve.Assignment, nq)
	type best struct {
		have bool
		res  serve.FleetResult
	}
	bests := make([]best, nq)
	for _, b := range batches {
		for k, i := range b.idxs {
			fr := b.resp.Results[k]
			if fr.NoCand || fr.NoFinite {
				continue
			}
			if !bests[i].have || less(fr, bests[i].res) {
				bests[i] = best{true, fr}
			}
		}
	}

	// Exact fallback: a query every owning shard reported candidate-less
	// would full-scan on a single node; broadcast that scan to all shards
	// (each owns a disjoint row set plus the replicated peaks) and merge
	// the same way.
	var fbIdxs []int
	for i := range bests {
		if !bests[i].have {
			fbIdxs = append(fbIdxs, i)
		}
	}
	if len(fbIdxs) > 0 {
		r.counters.Add(CtrFallbackBroadcasts, 1)
		fb := make(map[int]*shardBatch)
		for s, sc := range r.shards {
			b := &shardBatch{shard: sc, exact: true, idxs: fbIdxs}
			for _, i := range fbIdxs {
				b.pts = append(b.pts, pts[i])
			}
			fb[s] = b
		}
		if status, msg := r.scatter(fb); status != 0 {
			return nil, status, msg
		}
		for _, b := range fb {
			for k, i := range b.idxs {
				fr := b.resp.Results[k]
				if fr.NoCand || fr.NoFinite {
					continue
				}
				if !bests[i].have || less(fr, bests[i].res) {
					bests[i] = best{true, fr}
				}
			}
		}
		for _, i := range fbIdxs {
			if !bests[i].have {
				// Every shard's exact scan came back non-finite — the exact
				// error a single node reports for its first failing query.
				return nil, http.StatusInternalServerError, serve.ErrNoFinite.Error()
			}
		}
	}
	for i := range bests {
		out[i] = bests[i].res.Assignment
	}
	return out, 0, ""
}

// less orders fleet candidates: smaller exact squared distance first, ties
// to the lower global point ID.
func less(a, b serve.FleetResult) bool {
	if a.D2 != b.D2 {
		return a.D2 < b.D2
	}
	return a.Nearest < b.Nearest
}

// scatter round-trips every shard batch concurrently, filling resp/status.
// Returns the first failure in shard order (deterministic under tests).
func (r *Router) scatter(batches map[int]*shardBatch) (int, string) {
	var wg sync.WaitGroup
	for _, b := range batches {
		wg.Add(1)
		go func(b *shardBatch) {
			defer wg.Done()
			body, err := json.Marshal(serve.FleetAssignRequest{Points: b.pts, Masks: b.masks, Exact: b.exact})
			if err != nil {
				b.status, b.msg = http.StatusInternalServerError, err.Error()
				return
			}
			b.resp, b.status, b.msg = r.callShard(b.shard, body)
		}(b)
	}
	wg.Wait()
	ids := make([]int, 0, len(batches))
	for s := range batches {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	for _, s := range ids {
		b := batches[s]
		if b.status != http.StatusOK {
			return b.status, b.msg
		}
		if len(b.resp.Results) != len(b.idxs) {
			return http.StatusBadGateway, fmt.Sprintf("shard %d answered %d results for %d queries", s, len(b.resp.Results), len(b.idxs))
		}
	}
	return 0, ""
}

// Fanout reports the mean owning-shard count per routed query so far.
func (r *Router) Fanout() float64 {
	pts := r.counters.Get(CtrPoints)
	if pts == 0 {
		return 0
	}
	return float64(r.counters.Get(CtrShardsPerQuery)) / float64(pts)
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if r.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ReplicaInfo is one replica's row in the router's /statsz.
type ReplicaInfo struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
}

// RouterStatsz is the router's /statsz document: its own fleet.* counters,
// request latency, per-replica liveness, and a fleet-wide rollup summing
// the serve.* counters of every reachable replica.
type RouterStatsz struct {
	Shards     int               `json:"shards"`
	Counters   map[string]int64  `json:"counters"`
	Latency    serve.LatencyInfo `json:"latency"`
	FanoutMean float64           `json:"fanout_mean"`
	Replicas   []ReplicaInfo     `json:"replicas"`
	// Rollup sums serve.* counters across all reachable replicas;
	// RollupMissing counts replicas that could not be polled (their
	// contribution is absent, not zero).
	Rollup        map[string]int64 `json:"rollup"`
	RollupMissing int              `json:"rollup_missing,omitempty"`
	Draining      bool             `json:"draining"`
}

// Stats snapshots the router state, polling every replica for the rollup.
func (r *Router) Stats(ctx context.Context) RouterStatsz {
	st := RouterStatsz{
		Shards:   len(r.shards),
		Counters: r.counters.Snapshot(),
		Latency: serve.LatencyInfo{
			Count: r.hist.Count(),
			P50us: r.hist.Quantile(0.50).Microseconds(),
			P90us: r.hist.Quantile(0.90).Microseconds(),
			P99us: r.hist.Quantile(0.99).Microseconds(),
		},
		FanoutMean: r.Fanout(),
		Rollup:     map[string]int64{},
		Draining:   r.draining.Load(),
	}
	type polled struct {
		info ReplicaInfo
		st   *serve.Statsz
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var rows []polled
	for _, sc := range r.shards {
		for _, rep := range sc.replicas {
			wg.Add(1)
			go func(sc *shardClient, rep *replica) {
				defer wg.Done()
				p := polled{info: ReplicaInfo{Shard: sc.id, Addr: rep.addr, Alive: rep.alive.Load()}}
				p.st, _ = r.fetchStatsz(ctx, rep.addr)
				mu.Lock()
				rows = append(rows, p)
				mu.Unlock()
			}(sc, rep)
		}
	}
	wg.Wait()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].info.Shard != rows[j].info.Shard {
			return rows[i].info.Shard < rows[j].info.Shard
		}
		return rows[i].info.Addr < rows[j].info.Addr
	})
	for _, p := range rows {
		st.Replicas = append(st.Replicas, p.info)
		if p.st == nil {
			st.RollupMissing++
			continue
		}
		for k, v := range p.st.Counters {
			st.Rollup[k] += v
		}
	}
	return st
}

func (r *Router) handleStatsz(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), 5*time.Second)
	defer cancel()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Stats(ctx)) //nolint:errcheck
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log(format, args...)
	}
}

// FanoutBound returns the theoretical fan-out ceiling: a query touches at
// most min(M, shards) shards.
func (r *Router) FanoutBound() int {
	m := r.layouts.M()
	if s := len(r.shards); s < m {
		return s
	}
	return m
}
