package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/points"
	"repro/internal/serve"
)

// Router-side streaming ingest: POST /ingest on the router routes each
// point to the shard owning its first-rotation LSH bucket — the same
// layout ScanRotation starts a masked read scan at — so a later query near
// the point probes that shard with high probability and sees it before any
// compaction. The shard stores it in its delta segment and the next
// fleetctl rollover (or its own periodic compactor) bakes it into the
// shard's base artifact.
//
// Ingest calls are never hedged and never retried: a duplicate ingest is a
// duplicate point, which is worse than a failed request the client can
// retry knowingly. A multi-shard batch that fails on one shard reports the
// failure even though other shards may have committed their slices —
// at-least-once semantics; see OPERATIONS.md.

// Counter names of the router's ingest path.
const (
	// CtrIngestRequests counts admitted router /ingest requests.
	CtrIngestRequests = "fleet.ingest.requests"
	// CtrIngestPoints counts points routed to shard delta segments.
	CtrIngestPoints = "fleet.ingest.points"
	// CtrIngestErrors counts /ingest requests failed with a 5xx.
	CtrIngestErrors = "fleet.ingest.errors"
	// CtrIngestShed counts /ingest requests rejected 429 (a shard's delta
	// segment is full and its compactor is behind).
	CtrIngestShed = "fleet.ingest.shed"
)

// ingestShardBatch is the slice of an /ingest request routed to one shard.
type ingestShardBatch struct {
	shard *shardClient
	idxs  []int
	pts   [][]float64

	resp   *serve.IngestResponse
	status int
	msg    string
}

// handleIngest validates, routes each point to its owning shard, and
// reassembles the per-point acks in request order.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var body assignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if status, msg := serve.ValidatePoints(body.Points, r.cfg.Manifest.Dim, r.cfg.maxRequestPoints()); status != 0 {
		http.Error(w, msg, status)
		return
	}

	batches := make(map[int]*ingestShardBatch)
	for i, p := range body.Points {
		keys := r.layouts.Keys(points.Vector(p))
		owner := r.place.Owner(keys[serve.ScanRotation(keys)])
		b := batches[owner]
		if b == nil {
			b = &ingestShardBatch{shard: r.shards[owner]}
			batches[owner] = b
		}
		b.idxs = append(b.idxs, i)
		b.pts = append(b.pts, p)
	}

	var wg sync.WaitGroup
	for _, b := range batches {
		wg.Add(1)
		go func(b *ingestShardBatch) {
			defer wg.Done()
			body, err := json.Marshal(assignRequest{Points: b.pts})
			if err != nil {
				b.status, b.msg = http.StatusInternalServerError, err.Error()
				return
			}
			b.resp, b.status, b.msg = r.ingestShard(b.shard, body)
		}(b)
	}
	wg.Wait()

	r.counters.Add(CtrIngestRequests, 1)
	for s := range r.shards {
		b := batches[s]
		if b == nil {
			continue
		}
		if b.status != http.StatusOK {
			switch {
			case b.status == http.StatusTooManyRequests:
				r.counters.Add(CtrIngestShed, 1)
				w.Header().Set("Retry-After", "1")
			case b.status >= 500:
				r.counters.Add(CtrIngestErrors, 1)
			}
			http.Error(w, fmt.Sprintf("shard %d: %s", s, b.msg), b.status)
			return
		}
	}
	results := make([]serve.IngestResult, len(body.Points))
	for _, b := range batches {
		for k, i := range b.idxs {
			results[i] = b.resp.Results[k]
		}
	}
	r.counters.Add(CtrIngestPoints, int64(len(body.Points)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.IngestResponse{Results: results}) //nolint:errcheck
}

// ingestShard round-trips one shard's /ingest slice: the first alive
// replica only, no hedge, no failover (see the duplicate-point note above).
func (r *Router) ingestShard(sc *shardClient, body []byte) (*serve.IngestResponse, int, string) {
	reps := sc.alivePick()
	rep := reps[0]
	start := time.Now()
	resp, err := r.client.Post("http://"+rep.addr+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		r.markFailed(sc, rep)
		return nil, http.StatusBadGateway, fmt.Sprintf("replica %s unreachable: %v", rep.addr, err)
	}
	defer resp.Body.Close()
	rep.lastOK.Store(time.Now().UnixNano())
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, resp.StatusCode, string(bytes.TrimRight(msg, "\n"))
	}
	var out serve.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, http.StatusBadGateway, fmt.Sprintf("bad shard reply: %v", err)
	}
	sc.hist.Record(time.Since(start))
	return &out, http.StatusOK, ""
}
