package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/serve"
)

// trainModel runs the offline pipeline on a seeded blob dataset, exactly
// like the serve tests, so fleet conformance checks a real artifact.
func trainModel(t *testing.T, n, k int) *model.Model {
	t.Helper()
	ds := dataset.Blobs("fleet-test", n, 2, k, 100, 2.5, 7)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, 7)
	if err != nil {
		t.Fatal(err)
	}
	return mdl
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		a, err := fleet.NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fleet.NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, shards)
		const keys = 10000
		for i := 0; i < keys; i++ {
			key := "3|" + strconv.Itoa(i*7919) + ".-" + strconv.Itoa(i%13)
			o := a.Owner(key)
			if o2 := b.Owner(key); o2 != o {
				t.Fatalf("shards=%d key %q: owners %d vs %d across identical rings", shards, key, o, o2)
			}
			counts[o]++
		}
		for s, c := range counts {
			if c < keys/(shards*20) {
				t.Errorf("shards=%d: shard %d owns only %d/%d keys", shards, s, c, keys)
			}
		}
	}
	if _, err := fleet.NewRing(0, 0); err == nil {
		t.Error("0-shard ring built without error")
	}
}

// TestPartitionCoverage checks the partitioner's core invariants: every
// bucket's rows live on the bucket's owning shard, every peak replicates to
// every shard, sub-models validate, and partitioning is deterministic.
func TestPartitionCoverage(t *testing.T) {
	mdl := trainModel(t, 1200, 4)
	mdl.BuildCompact()
	for _, shards := range []int{1, 3} {
		subs, mf, err := fleet.Partition(mdl, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) != shards {
			t.Fatalf("got %d sub-models for %d shards", len(subs), shards)
		}
		place, err := mf.Placement()
		if err != nil {
			t.Fatal(err)
		}
		layouts := mf.Layouts()
		// has[s] answers "does shard s hold global row g" via binary search
		// over the (ascending) RowIDs.
		has := func(s int, g int32) bool {
			ids := subs[s].RowIDs
			j := sort.Search(len(ids), func(j int) bool { return ids[j] >= g })
			return j < len(ids) && ids[j] == g
		}
		for i := 0; i < mdl.N(); i++ {
			for _, key := range layouts.Keys(mdl.Row(i)) {
				if s := place.Owner(key); !has(s, int32(i)) {
					t.Fatalf("shards=%d: row %d key %q owned by shard %d but absent there", shards, i, key, s)
				}
			}
		}
		total := 0
		for s, sub := range subs {
			total += sub.N()
			if len(sub.Data32) != len(sub.Data) || len(sub.Q8Codes)*8 != len(sub.Data)*8 {
				t.Errorf("shards=%d shard %d: compact mirrors not carried over", shards, s)
			}
			for c, p := range mdl.Peaks {
				if !has(s, p) {
					t.Fatalf("shards=%d: peak %d (cluster %d) missing from shard %d", shards, p, c, s)
				}
				if got := sub.GlobalID(int(sub.Peaks[c])); got != p {
					t.Fatalf("shards=%d shard %d: peak %d re-indexed to global %d", shards, s, p, got)
				}
			}
		}
		if shards == 1 && total != mdl.N() {
			t.Errorf("single shard holds %d of %d rows", total, mdl.N())
		}
		subs2, _, err := fleet.Partition(mdl, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		for s := range subs {
			if !int32sEqual(subs[s].RowIDs, subs2[s].RowIDs) {
				t.Fatalf("shards=%d: partition not deterministic on shard %d", shards, s)
			}
		}
	}
	if _, _, err := fleet.Partition(mdl, 0, 0); err == nil {
		t.Error("0-shard partition built without error")
	}
	sub, _, err := fleet.Partition(mdl, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fleet.Partition(sub[0], 2, 0); err == nil {
		t.Error("re-partitioning a sub-model built without error")
	}
}

// TestHeavyBucketBalance checks the cost-aware placement's plumbing: on a
// clustered model whose LSH bucket mass concentrates in a few
// cluster-core buckets, the manifest's overrides must exist, survive a
// save/load round trip, and resolve identically on a reloaded placement.
// (TestSampledWeightBalance, in the package, checks the balance itself
// against the partitioner's own cost estimate.)
func TestHeavyBucketBalance(t *testing.T) {
	mdl := trainModel(t, 4000, 3)
	for _, shards := range []int{2, 4} {
		_, mf, err := fleet.Partition(mdl, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/fleet.json"
		if err := mf.Save(path); err != nil {
			t.Fatal(err)
		}
		mf2, err := fleet.LoadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(mf2.Overrides) != len(mf.Overrides) {
			t.Fatalf("shards=%d: %d overrides saved, %d loaded", shards, len(mf.Overrides), len(mf2.Overrides))
		}
		place, err := mf.Placement()
		if err != nil {
			t.Fatal(err)
		}
		place2, err := mf2.Placement()
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && len(mf.Overrides) == 0 {
			t.Errorf("shards=%d: no heavy buckets re-placed on a clustered model", shards)
		}
		layouts := mf.Layouts()
		seen := make(map[string]bool)
		for i := 0; i < mdl.N(); i++ {
			for _, key := range layouts.Keys(mdl.Row(i)) {
				if seen[key] {
					continue
				}
				seen[key] = true
				if o, o2 := place.Owner(key), place2.Owner(key); o2 != o {
					t.Fatalf("shards=%d key %q: owner %d vs %d after manifest round trip", shards, key, o, o2)
				}
			}
		}
	}
	// Out-of-range overrides must be rejected, not silently mis-routed.
	bad := &fleet.Manifest{Dim: 2, Shards: 2, M: 3, Pi: 3, W: 1, Overrides: map[string]int{"0|1.2.3": 2}}
	if err := bad.Validate(); err == nil {
		t.Error("override to out-of-range shard validated without error")
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// startFleet partitions mdl and brings up one serve.Server per shard per
// replica plus a router, all on loopback. Returns the router and the shard
// servers (shards × replicas).
func startFleet(t *testing.T, mdl *model.Model, shards, replicas int, rcfg fleet.RouterConfig, scfg func(shard, rep int) serve.Config) (*fleet.Router, [][]*serve.Server) {
	t.Helper()
	subs, mf, err := fleet.Partition(mdl, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvs := make([][]*serve.Server, shards)
	addrs := make([][]string, shards)
	for s := range subs {
		eng, err := serve.NewEngine(subs[s], serve.PrecF64)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < replicas; rep++ {
			cfg := serve.Config{}
			if scfg != nil {
				cfg = scfg(s, rep)
			}
			id := s
			cfg.ShardID = &id
			srv := serve.New(cfg)
			srv.UseEngine(eng)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
			srvs[s] = append(srvs[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
		}
	}
	rcfg.Manifest = mf
	rcfg.Shards = addrs
	router, err := fleet.NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CheckShards(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := router.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Shutdown(context.Background()) }) //nolint:errcheck
	return router, srvs
}

// rawAssign POSTs an /assign body and returns status plus raw response
// bytes — the unit of the byte-identity contract.
func rawAssign(t *testing.T, addr string, body string) (int, string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/assign", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestFleetConformance is the acceptance gate: the router in front of a
// partitioned fleet must answer every request byte-identically to a single
// server holding the full model — normal queries, fallback-triggering far
// queries, and every validation rejection — under concurrent clients.
func TestFleetConformance(t *testing.T) {
	mdl := trainModel(t, 1500, 4)
	single := serve.New(serve.Config{})
	if err := single.SetModel(mdl); err != nil {
		t.Fatal(err)
	}
	if err := single.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer single.Shutdown(context.Background()) //nolint:errcheck

	for _, shards := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			router, _ := startFleet(t, mdl, shards, 1, fleet.RouterConfig{}, nil)

			// Batches of training rows (self-distance zero), jittered rows
			// (real NN work), one far query per batch (exact fallback), and
			// a handful of validation errors — byte-compared in parallel.
			var bodies []string
			const chunk = 25
			for lo := 0; lo < mdl.N(); lo += chunk * 3 {
				var pts [][]float64
				for i := lo; i < lo+chunk && i < mdl.N(); i++ {
					pts = append(pts, mdl.Row(i))
					j := append([]float64(nil), mdl.Row(i)...)
					j[0] += mdl.Dc / 3
					j[1] -= mdl.Dc / 7
					pts = append(pts, j)
				}
				pts = append(pts, []float64{1e9, -1e9}) // far: no bucket anywhere
				b, err := json.Marshal(map[string][][]float64{"points": pts})
				if err != nil {
					t.Fatal(err)
				}
				bodies = append(bodies, string(b))
			}
			bodies = append(bodies,
				`{"points":[]}`,              // no points
				`{"points":[[1,2,3]]}`,       // wrong dim
				`{"points":[[1e300,0]]}`,     // overflow coordinate
				`{"points":[[0,1]]`,          // truncated JSON
				`{"points":[[0,0],["a",0]]}`, // malformed number
			)

			const clients = 6
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < len(bodies); i += clients {
						sc, sb := rawAssign(t, single.Addr(), bodies[i])
						fc, fb := rawAssign(t, router.Addr(), bodies[i])
						if sc != fc || sb != fb {
							errc <- fmt.Errorf("body %d: single (%d) %q vs fleet (%d) %q", i, sc, sb, fc, fb)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// With M=10 layouts and a balanced ring, nearly every query owns
			// buckets on every shard of a tiny fleet, so at 2 shards the mean
			// legitimately sits at 2.0 minus the rare single-shard query; only
			// from 3 shards up is strictly-below-shards statistically certain.
			fo := router.Fanout()
			if fo <= 0 || fo > float64(shards) {
				t.Errorf("mean fan-out %.3f not in (0, %d]", fo, shards)
			}
			if shards >= 3 && fo >= float64(shards) {
				t.Errorf("mean fan-out %.3f not strictly below %d shards", fo, shards)
			}
			if router.Counters().Get(fleet.CtrFallbackBroadcasts) == 0 {
				t.Error("far queries never triggered an exact fallback broadcast")
			}
			if router.Counters().Get(fleet.CtrErrors) != 0 {
				t.Errorf("router counted %d errors on a healthy fleet", router.Counters().Get(fleet.CtrErrors))
			}
		})
	}
}

// TestFleetStatszRollup checks the router's fleet-wide counter rollup and
// replica reporting.
func TestFleetStatszRollup(t *testing.T) {
	mdl := trainModel(t, 900, 3)
	router, srvs := startFleet(t, mdl, 2, 1, fleet.RouterConfig{}, nil)
	body, _ := json.Marshal(map[string][][]float64{"points": {mdl.Row(0), mdl.Row(1)}})
	if sc, sb := rawAssign(t, router.Addr(), string(body)); sc != http.StatusOK {
		t.Fatalf("assign through router: HTTP %d %s", sc, sb)
	}
	st := router.Stats(context.Background())
	if st.Shards != 2 || len(st.Replicas) != 2 {
		t.Fatalf("statsz reports %d shards / %d replicas", st.Shards, len(st.Replicas))
	}
	if st.RollupMissing != 0 {
		t.Fatalf("%d replicas missing from rollup", st.RollupMissing)
	}
	var want int64
	for _, reps := range srvs {
		for _, srv := range reps {
			want += srv.Counters().Get(serve.CtrFleetRequests)
		}
	}
	if want == 0 || st.Rollup[serve.CtrFleetRequests] != want {
		t.Errorf("rollup %s = %d, replicas sum to %d", serve.CtrFleetRequests, st.Rollup[serve.CtrFleetRequests], want)
	}
	if st.Counters[fleet.CtrRequests] != 1 || st.Counters[fleet.CtrPoints] != 2 {
		t.Errorf("router counters: %+v", st.Counters)
	}
}

// TestFleetHedging forces a hedge: the round-robin start replica of a
// 2-replica shard stalls every batch far past the fixed hedge delay, so the
// hedged duplicate to the fast replica must win.
func TestFleetHedging(t *testing.T) {
	mdl := trainModel(t, 900, 3)
	slow := func(shard, rep int) serve.Config {
		cfg := serve.Config{}
		if rep == 0 {
			cfg.ProcessHook = func() { time.Sleep(150 * time.Millisecond) }
		}
		return cfg
	}
	router, _ := startFleet(t, mdl, 1, 2, fleet.RouterConfig{HedgeDelay: 10 * time.Millisecond}, slow)
	body, _ := json.Marshal(map[string][][]float64{"points": {mdl.Row(0)}})
	for i := 0; i < 4; i++ {
		if sc, sb := rawAssign(t, router.Addr(), string(body)); sc != http.StatusOK {
			t.Fatalf("request %d: HTTP %d %s", i, sc, sb)
		}
	}
	if h := router.Counters().Get(fleet.CtrHedges); h == 0 {
		t.Error("no hedged requests despite a stalled replica")
	}
	if w := router.Counters().Get(fleet.CtrHedgeWins); w == 0 {
		t.Error("no hedge wins despite a stalled replica")
	}
}

// TestFleetFailover drills the chaos scenario from the issue: two replicas
// per shard, one killed mid-sweep. The router must fail over with zero
// client-visible errors, keep every assignment bit-identical to a healthy
// single server, and declare the dead replica within the liveness timeout.
func TestFleetFailover(t *testing.T) {
	mdl := trainModel(t, 1200, 4)
	single := serve.New(serve.Config{})
	if err := single.SetModel(mdl); err != nil {
		t.Fatal(err)
	}
	if err := single.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer single.Shutdown(context.Background()) //nolint:errcheck

	// The victim is shard 0's replica 0. chaos.OnNth arms the kill on that
	// replica's 3rd processed batch — mid-sweep by construction — and the
	// kill itself runs off the batcher goroutine (Shutdown waits for it).
	ch := chaos.New(7)
	var killed sync.WaitGroup
	killed.Add(1)
	arm := chaos.OnNth(3, func() {
		go func() {
			defer killed.Done()
			ch.Node("shard0-replica0").Kill() //nolint:errcheck
		}()
	})
	scfg := func(shard, rep int) serve.Config {
		if shard == 0 && rep == 0 {
			return serve.Config{ProcessHook: arm}
		}
		return serve.Config{}
	}
	rcfg := fleet.RouterConfig{
		Heartbeat:  25 * time.Millisecond,
		DeadAfter:  50 * time.Millisecond,
		HedgeDelay: -1, // isolate failover from hedging
	}
	router, srvs := startFleet(t, mdl, 2, 2, rcfg, scfg)
	victim := srvs[0][0]
	ch.Register("shard0-replica0", func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		return victim.Shutdown(ctx)
	}, nil)

	const chunk = 20
	var mu sync.Mutex
	results := make([]serve.Assignment, mdl.N())
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for lo := c * chunk; lo < mdl.N(); lo += 4 * chunk {
				hi := lo + chunk
				if hi > mdl.N() {
					hi = mdl.N()
				}
				pts := make([][]float64, 0, hi-lo)
				for i := lo; i < hi; i++ {
					pts = append(pts, mdl.Row(i))
				}
				body, _ := json.Marshal(map[string][][]float64{"points": pts})
				sc, sb := rawAssign(t, router.Addr(), string(body))
				if sc != http.StatusOK {
					errc <- fmt.Errorf("rows [%d,%d): HTTP %d %s", lo, hi, sc, sb)
					return
				}
				var out struct {
					Results []serve.Assignment `json:"results"`
				}
				if err := json.Unmarshal([]byte(sb), &out); err != nil {
					errc <- err
					return
				}
				mu.Lock()
				copy(results[lo:hi], out.Results)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	killed.Wait()

	// Bit-identical to the healthy single server, query by query.
	for lo := 0; lo < mdl.N(); lo += 100 {
		hi := lo + 100
		if hi > mdl.N() {
			hi = mdl.N()
		}
		pts := make([][]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			pts = append(pts, mdl.Row(i))
		}
		body, _ := json.Marshal(map[string][][]float64{"points": pts})
		sc, sb := rawAssign(t, single.Addr(), string(body))
		if sc != http.StatusOK {
			t.Fatalf("single server rows [%d,%d): HTTP %d", lo, hi, sc)
		}
		var out struct {
			Results []serve.Assignment `json:"results"`
		}
		if err := json.Unmarshal([]byte(sb), &out); err != nil {
			t.Fatal(err)
		}
		for j, want := range out.Results {
			if got := results[lo+j]; got != want {
				t.Fatalf("point %d: fleet-under-failure %+v, single %+v", lo+j, got, want)
			}
		}
	}

	if errs := router.Counters().Get(fleet.CtrErrors); errs != 0 {
		t.Errorf("router surfaced %d errors during failover", errs)
	}
	// The liveness machinery must have noticed the kill (via the failed
	// request or the /healthz probe) within the configured timeout.
	deadline := time.Now().Add(2 * time.Second)
	for router.Counters().Get(fleet.CtrReplicaDeaths) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("killed replica never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
