package fleet

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// TestSampledWeightBalance checks that the partitioner's placement
// balances its own sampled bucket-cost estimate: on a clustered model the
// busiest shard must stay within 25% of the ideal share. The estimate is
// recomputed here through the same helpers Partition uses, so the test
// pins the greedy placement, not the estimator's absolute scale.
func TestSampledWeightBalance(t *testing.T) {
	ds := dataset.Blobs("fleet-balance", 4000, 2, 3, 100, 2.5, 7)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		_, mf, err := Partition(mdl, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		place, err := mf.Placement()
		if err != nil {
			t.Fatal(err)
		}
		keys, rowKeys, sizes := bucketIndex(mdl, mf.Layouts(), mf.M)
		weights := estimateBucketWeights(mdl.N(), mf.M, keys, rowKeys, sizes)
		load := make([]float64, shards)
		total := 0.0
		for id, w := range weights {
			load[place.Owner(keys[id])] += w
			total += w
		}
		ideal := total / float64(shards)
		for s, w := range load {
			if w > ideal*1.25 {
				t.Errorf("shards=%d: shard %d carries %.0f of %.0f estimated scan cost (ideal %.0f, cap +25%%)",
					shards, s, w, total, ideal)
			}
		}
	}
}
