package fleet

import (
	"fmt"
	"sort"

	"repro/internal/lsh"
	"repro/internal/model"
	"repro/internal/serve"
)

// Partition splits a full cluster model into per-shard sub-models routed by
// the consistent-hash ring over LSH bucket keys. Shard s receives every row
// appearing in at least one bucket s owns, plus every peak row (replicated
// so halo/peak-distance fields and the exact-scan fallback work on any
// shard). Sub-model rows keep ascending global-ID order and carry a RowIDs
// section, so a shard's local lowest-row-index NN tie rule picks the same
// winner the full model would.
//
// vnodes is the virtual-node count per ring shard (0 means DefaultVNodes).
// The returned manifest reconstructs the exact routing.
func Partition(m *model.Model, shards, vnodes int) ([]*model.Model, *Manifest, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, fmt.Errorf("fleet: partition: %w", err)
	}
	if len(m.RowIDs) != 0 {
		return nil, nil, fmt.Errorf("fleet: partition: model %q is already a shard sub-model", m.Name)
	}
	mf := &Manifest{
		Name: m.Name, Dim: m.Dim, N: m.N(), Dc: m.Dc, Clusters: m.NumClusters(),
		Seed: m.LSH.Seed, M: m.LSH.M, Pi: m.LSH.Pi, W: m.LSH.W,
		Shards: shards, VNodes: vnodes,
	}
	if err := mf.Validate(); err != nil {
		return nil, nil, err
	}
	ring, err := mf.Ring()
	if err != nil {
		return nil, nil, err
	}
	layouts := mf.Layouts()

	// Pass 1: intern every bucket key and record each row's key ids. LSH
	// bucket mass is skewed — cluster cores concentrate in a few huge
	// buckets per layout — so ring placement alone would hand whole
	// clusters to whichever shard their keys hash to. The heavy buckets
	// get explicit balanced placements instead, weighted by a sampled
	// estimate of each bucket's true scan cost and recorded in the
	// manifest for the router.
	n := m.N()
	keys, rowKeys, sizes := bucketIndex(m, layouts, mf.M)
	weights := estimateBucketWeights(n, mf.M, keys, rowKeys, sizes)
	groups := bucketGroups(m, rowKeys, len(keys), mf.M)
	mf.Overrides = balanceHeavyBuckets(keys, weights, groups, ring, shards)
	place, err := mf.Placement()
	if err != nil {
		return nil, nil, err
	}

	// Pass 2: mark which shards need which rows — the owner of any bucket
	// holding the row, plus every shard for peak rows.
	need := make([][]bool, shards)
	for s := range need {
		need[s] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < mf.M; j++ {
			need[place.Owner(keys[rowKeys[i*mf.M+j]])][i] = true
		}
	}
	for _, p := range m.Peaks {
		for s := range need {
			need[s][int(p)] = true
		}
	}

	subs := make([]*model.Model, shards)
	for s := range subs {
		sub, err := subModel(m, need[s], fmt.Sprintf("%s@shard%d/%d", m.Name, s, shards))
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: partition shard %d: %w", s, err)
		}
		subs[s] = sub
	}
	return subs, mf, nil
}

// Heavy-bucket selection bounds: a bucket is heavy when it alone carries
// more than 1/overrideFraction of one shard's ideal scan weight, and at
// most maxOverridesPerShard × shards of the heaviest qualify, keeping the
// manifest small. Fine-grained bucketings where no single bucket matters
// produce zero overrides and fall back to pure consistent hashing.
const (
	overrideFraction     = 128
	maxOverridesPerShard = 128
)

// bucketIndex interns every bucket key of the model: keys maps interned
// id to key string, rowKeys holds row i's key id for layout j at
// [i*m+j], sizes holds per-bucket row counts. Interning order follows the
// (row, layout) iteration, so ids — and everything derived from them —
// are deterministic.
func bucketIndex(m *model.Model, layouts *lsh.Layouts, lm int) (keys []string, rowKeys []int32, sizes []int32) {
	n := m.N()
	keyID := make(map[string]int32)
	rowKeys = make([]int32, n*lm)
	for i := 0; i < n; i++ {
		for j, key := range layouts.Keys(m.Row(i)) {
			id, ok := keyID[key]
			if !ok {
				id = int32(len(keys))
				keyID[key] = id
				keys = append(keys, key)
				sizes = append(sizes, 0)
			}
			sizes[id]++
			rowKeys[i*lm+j] = id
		}
	}
	return keys, rowKeys, sizes
}

// Bucket-weight estimation knobs. maxWeightSamples rows are replayed as
// queries (evenly strided, so the sample mirrors the data the way serving
// queries do). scoreUnit is the cost of one exact candidate scoring
// relative to one posting-walk visit (a SWAR membership word): confirming
// and scoring a row costs a key compare plus a full-dimension distance,
// roughly an order of magnitude over streaming one prefilter word.
const (
	maxWeightSamples = 2048
	scoreUnit        = 12.0
)

// estimateBucketWeights estimates each bucket's scan cost under a query
// mix that mirrors the stored data, by replaying a strided sample of the
// rows as queries against the bucket index.
//
// Owning a bucket has two costs per query that probes it, and they scale
// differently. The walk — streaming the posting list through the SWAR
// prefilter — is paid on the bucket's full size by the bucket's owner
// alone. The exact scoring of a candidate, though, is paid once
// fleet-wide by the owner of the candidate's *first* matching layout in
// the engine's rotated scan order. Neither a size² weight nor an
// expected 1/m split over a row's m matching layouts gets that right:
// the rotation start j₀ is a deterministic hash of the query's key
// tuple, so every query sharing a key tuple — an entire cluster core —
// funnels its scoring through the *same* layout's bucket, not 1/m to
// each. The estimator therefore replays each sample through
// serve.ScanRotation and the exact first-match rule, charging one walk
// unit per posting visited and scoreUnit to the precise bucket the
// engine will score the candidate under.
func estimateBucketWeights(n, m int, keys []string, rowKeys []int32, sizes []int32) []float64 {
	members := make([][]int32, len(sizes))
	for id, sz := range sizes {
		members[id] = make([]int32, 0, sz)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			id := rowKeys[i*m+j]
			members[id] = append(members[id], int32(i))
		}
	}
	weights := make([]float64, len(sizes))
	step := n / maxWeightSamples
	if step < 1 {
		step = 1
	}
	seen := make([]bool, n)
	var touched []int32
	qkeys := make([]string, m)
	for q := 0; q < n; q += step {
		qk := rowKeys[q*m : q*m+m]
		for j, id := range qk {
			qkeys[j] = keys[id]
		}
		j0 := serve.ScanRotation(qkeys)
		for _, id := range qk {
			weights[id] += float64(len(members[id])) // walk: full posting list per probe
			for _, r := range members[id] {
				if !seen[r] {
					seen[r] = true
					touched = append(touched, r)
				}
			}
		}
		for _, r := range touched {
			base := int(r) * m
			for dj := 0; dj < m; dj++ {
				j2 := j0 + dj
				if j2 >= m {
					j2 -= m
				}
				if rowKeys[base+j2] == qk[j2] {
					weights[qk[j2]] += scoreUnit
					break
				}
			}
			seen[r] = false
		}
		touched = touched[:0]
	}
	return weights
}

// bucketGroups returns each bucket's placement group: the (approximate)
// majority cluster label among its member rows, found with one
// Boyer–Moore majority pass. A cluster core's buckets — one per layout —
// all carry that cluster's label, so grouping by it lets the balancer
// co-locate the buckets a core query probes together. Deterministic:
// the pass follows (row, layout) order.
func bucketGroups(m *model.Model, rowKeys []int32, nbuckets, lm int) []int32 {
	cand := make([]int32, nbuckets)
	cnt := make([]int32, nbuckets)
	n := m.N()
	for i := 0; i < n; i++ {
		lbl := m.Labels[i]
		for j := 0; j < lm; j++ {
			id := rowKeys[i*lm+j]
			switch {
			case cnt[id] == 0:
				cand[id], cnt[id] = lbl, 1
			case cand[id] == lbl:
				cnt[id]++
			default:
				cnt[id]--
			}
		}
	}
	return cand
}

// chunkFraction caps a placement chunk at 1/chunkFraction of one shard's
// ideal weight, so the greedy placement can always land within a few
// percent of balanced even when one cluster dominates (or there are
// fewer clusters than shards).
const chunkFraction = 5

// balanceHeavyBuckets picks the buckets hot enough to distort shard load
// and greedily re-places them. Placement is fan-out aware: heavy buckets
// are first grouped by their majority cluster label (a core query probes
// one core bucket per layout, all sharing that label, so scattering them
// would make every such query contact every shard), then each group is
// split into chunks no heavier than an ideal shard's weight over
// chunkFraction, and the chunks go heaviest-first onto the shard with
// the least total scan weight so far (ring-owned tail weight included).
// Deterministic given the model — the sampled weights and majority pass
// are deterministic, ordering ties break on bucket key, ties in load go
// to the lowest shard — so re-running the partitioner reproduces
// fleet.json byte for byte. Returns only the placements that differ
// from the ring.
func balanceHeavyBuckets(keys []string, weights []float64, groups []int32, ring *Ring, shards int) map[string]int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	threshold := total / float64(shards) / overrideFraction
	type bucket struct {
		key    string
		weight float64
		group  int32
	}
	var heavy []bucket
	load := make([]float64, shards) // ring-owned weight of the tail
	for id, w := range weights {
		if w > threshold {
			heavy = append(heavy, bucket{keys[id], w, groups[id]})
		} else {
			load[ring.Owner(keys[id])] += w
		}
	}
	sort.Slice(heavy, func(i, j int) bool {
		if heavy[i].weight != heavy[j].weight {
			return heavy[i].weight > heavy[j].weight
		}
		return heavy[i].key < heavy[j].key
	})
	if max := maxOverridesPerShard * shards; len(heavy) > max {
		// The cut buckets stay ring-owned; put their weight back.
		for _, b := range heavy[max:] {
			load[ring.Owner(b.key)] += b.weight
		}
		heavy = heavy[:max]
	}

	// Pack each label group into chunks of bounded weight: within a
	// group, heaviest bucket first, starting a new chunk whenever the
	// cap would be crossed (a single over-cap bucket chunks alone).
	sort.SliceStable(heavy, func(i, j int) bool { return heavy[i].group < heavy[j].group })
	type chunk struct {
		weight  float64
		buckets []bucket
	}
	chunkCap := total / float64(shards) / chunkFraction
	var chunks []chunk
	for i := 0; i < len(heavy); i++ {
		b := heavy[i]
		if len(chunks) == 0 || chunks[len(chunks)-1].buckets[0].group != b.group ||
			chunks[len(chunks)-1].weight+b.weight > chunkCap {
			chunks = append(chunks, chunk{})
		}
		c := &chunks[len(chunks)-1]
		c.weight += b.weight
		c.buckets = append(c.buckets, b)
	}
	sort.SliceStable(chunks, func(i, j int) bool {
		if chunks[i].weight != chunks[j].weight {
			return chunks[i].weight > chunks[j].weight
		}
		return chunks[i].buckets[0].key < chunks[j].buckets[0].key
	})

	overrides := make(map[string]int)
	for _, c := range chunks {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += c.weight
		for _, b := range c.buckets {
			if best != ring.Owner(b.key) {
				overrides[b.key] = best
			}
		}
	}
	if len(overrides) == 0 {
		return nil
	}
	return overrides
}

// subModel extracts the rows marked in keep (ascending global order) into a
// standalone sub-model with a RowIDs mapping and locally re-indexed peaks.
func subModel(m *model.Model, keep []bool, name string) (*model.Model, error) {
	rowIDs := make([]int32, 0, len(keep))
	for i, k := range keep {
		if k {
			rowIDs = append(rowIDs, int32(i))
		}
	}
	nl := len(rowIDs)
	sub := &model.Model{
		Name: name, Dim: m.Dim, Dc: m.Dc, LSH: m.LSH,
		Data:   make([]float64, 0, nl*m.Dim),
		Rho:    make([]float64, 0, nl),
		Labels: make([]int32, 0, nl),
		// Cluster space replicates verbatim: labels index the same peaks,
		// and the border densities are global per-cluster facts.
		Peaks:  make([]int32, len(m.Peaks)),
		Border: append([]float64(nil), m.Border...),
		RowIDs: rowIDs,
	}
	for _, gid := range rowIDs {
		i := int(gid)
		sub.Data = append(sub.Data, m.Data[i*m.Dim:(i+1)*m.Dim]...)
		sub.Rho = append(sub.Rho, m.Rho[i])
		sub.Labels = append(sub.Labels, m.Labels[i])
	}
	// Compact mirrors slice row-for-row; q8 keeps the full model's
	// per-dimension code parameters, so codes stay valid unchanged.
	if len(m.Data32) == len(m.Data) {
		sub.Data32 = make([]float32, 0, nl*m.Dim)
		for _, gid := range rowIDs {
			i := int(gid)
			sub.Data32 = append(sub.Data32, m.Data32[i*m.Dim:(i+1)*m.Dim]...)
		}
	}
	if len(m.Q8Codes) == len(m.Data) {
		sub.Q8Codes = make([]uint8, 0, nl*m.Dim)
		for _, gid := range rowIDs {
			i := int(gid)
			sub.Q8Codes = append(sub.Q8Codes, m.Q8Codes[i*m.Dim:(i+1)*m.Dim]...)
		}
		sub.Q8Min = append([]float64(nil), m.Q8Min...)
		sub.Q8Scale = append([]float64(nil), m.Q8Scale...)
	}
	// Peaks are global row IDs in the source; re-index to local rows.
	for c, p := range m.Peaks {
		j := sort.Search(len(rowIDs), func(j int) bool { return rowIDs[j] >= p })
		if j == len(rowIDs) || rowIDs[j] != p {
			return nil, fmt.Errorf("peak row %d missing from sub-model", p)
		}
		sub.Peaks[c] = int32(j)
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return sub, nil
}
