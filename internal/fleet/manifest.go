package fleet

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/lsh"
	"repro/internal/model"
)

// Manifest describes one partitioned fleet: everything a router needs to
// route queries — and verify shards — without loading any sub-model. The
// partitioner writes it as fleet.json next to the shard artifacts; routerd
// loads it at startup. LSH layouts and the consistent-hash ring are both
// regenerated deterministically from these parameters, so partitioner and
// router agree on bucket ownership by construction.
type Manifest struct {
	// Name labels the source model (diagnostic only).
	Name string `json:"name"`
	// Dim is the point dimensionality; the router validates queries
	// against it with the exact single-node error strings.
	Dim int `json:"dim"`
	// N is the source model's point count (before partitioning).
	N int `json:"n"`
	// Dc is the training run's cutoff distance.
	Dc float64 `json:"dc"`
	// Clusters is the cluster count (peaks replicate to every shard).
	Clusters int `json:"clusters"`
	// Seed/M/Pi/W are the LSH layout parameters (see model.Params).
	Seed int64   `json:"lsh_seed"`
	M    int     `json:"lsh_m"`
	Pi   int     `json:"lsh_pi"`
	W    float64 `json:"lsh_w"`
	// Shards is the fleet width; sub-model s is shard-<s>.ddpm.
	Shards int `json:"shards"`
	// VNodes is the virtual-node count per shard on the consistent-hash
	// ring (0 reads as DefaultVNodes).
	VNodes int `json:"vnodes"`
	// Overrides pins heavy buckets to explicit shards. Consistent hashing
	// balances the *key space*, but LSH bucket sizes are skewed — a few
	// cluster-core buckets can carry most of the rows, and whichever shard
	// their keys happen to hash to becomes the fleet's hot spot. The
	// partitioner, which estimates every bucket's scan cost by sampling,
	// greedily assigns the heavy buckets to the lightest shard and records here only the
	// ones that differ from their ring owner; the ring covers the long
	// tail, where statistical balance is enough.
	Overrides map[string]int `json:"overrides,omitempty"`
}

// Validate checks the manifest invariants.
func (mf *Manifest) Validate() error {
	switch {
	case mf.Dim < 1:
		return fmt.Errorf("fleet: manifest dim %d < 1", mf.Dim)
	case mf.Shards < 1:
		return fmt.Errorf("fleet: manifest shards %d < 1", mf.Shards)
	case mf.M < 1 || mf.M > 64:
		// Routing masks are uint64 bitmaps, one bit per layout.
		return fmt.Errorf("fleet: manifest lsh_m %d outside [1,64]", mf.M)
	case mf.Pi < 1:
		return fmt.Errorf("fleet: manifest lsh_pi %d < 1", mf.Pi)
	case mf.W <= 0:
		return fmt.Errorf("fleet: manifest lsh_w %v <= 0", mf.W)
	case mf.VNodes < 0:
		return fmt.Errorf("fleet: manifest vnodes %d < 0", mf.VNodes)
	}
	for key, s := range mf.Overrides {
		if s < 0 || s >= mf.Shards {
			return fmt.Errorf("fleet: manifest override %q -> shard %d outside [0,%d)", key, s, mf.Shards)
		}
	}
	return nil
}

// Params returns the LSH parameters as the model package type.
func (mf *Manifest) Params() model.Params {
	return model.Params{Seed: mf.Seed, M: mf.M, Pi: mf.Pi, W: mf.W}
}

// Layouts regenerates the LSH layouts the fleet buckets by.
func (mf *Manifest) Layouts() *lsh.Layouts {
	return lsh.NewLayouts(mf.Dim, mf.M, mf.Pi, mf.W, mf.Seed)
}

// Ring builds the fleet's consistent-hash ring.
func (mf *Manifest) Ring() (*Ring, error) {
	return NewRing(mf.Shards, mf.VNodes)
}

// Placement resolves bucket-key ownership for this fleet: the manifest's
// explicit heavy-bucket overrides first, the consistent-hash ring for the
// long tail. Partitioner and router both route through a Placement built
// from the same manifest, so they agree on every key by construction.
type Placement struct {
	ring      *Ring
	overrides map[string]int
}

// Placement builds the fleet's key-ownership resolver.
func (mf *Manifest) Placement() (*Placement, error) {
	ring, err := mf.Ring()
	if err != nil {
		return nil, err
	}
	return &Placement{ring: ring, overrides: mf.Overrides}, nil
}

// Owner returns the shard owning a bucket key.
func (p *Placement) Owner(key string) int {
	if s, ok := p.overrides[key]; ok {
		return s
	}
	return p.ring.Owner(key)
}

// Save writes the manifest as indented JSON.
func (mf *Manifest) Save(path string) error {
	if err := mf.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadManifest reads and validates a fleet.json.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf Manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		return nil, fmt.Errorf("fleet: manifest %s: %w", path, err)
	}
	if err := mf.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: manifest %s: %w", path, err)
	}
	return &mf, nil
}
