package dfsio

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

func TestSaveLoadPairs(t *testing.T) {
	fs := dfs.NewMemFS()
	records := []mapreduce.Pair{
		{Key: "a", Value: []byte{1, 2, 3}},
		{Key: "", Value: nil},
		{Key: "binary", Value: []byte{0, 255, 0, 10, 13}},
	}
	if err := SavePairs(fs, "job/out", records, 2); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("job/out/part-")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("parts = %v", names)
	}
	got, err := LoadPairs(fs, "job/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("loaded %d records", len(got))
	}
	for i := range records {
		if got[i].Key != records[i].Key || string(got[i].Value) != string(records[i].Value) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestSavePairsReplacesStaleParts(t *testing.T) {
	fs := dfs.NewMemFS()
	big := make([]mapreduce.Pair, 100)
	for i := range big {
		big[i] = mapreduce.Pair{Key: "k", Value: []byte{byte(i)}}
	}
	if err := SavePairs(fs, "x", big, 8); err != nil {
		t.Fatal(err)
	}
	small := big[:3]
	if err := SavePairs(fs, "x", small, 1); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPairs(fs, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("stale parts leaked: %d records", len(got))
	}
}

func TestEmptyRecordSet(t *testing.T) {
	fs := dfs.NewMemFS()
	if err := SavePairs(fs, "empty", nil, 4); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPairs(fs, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty set loaded %d records", len(got))
	}
	if _, err := LoadPairs(fs, "never-written"); err == nil {
		t.Fatal("want error for missing prefix")
	}
}

// Property: arbitrary binary records survive the save/load cycle through
// any shard count.
func TestPairsRoundTripProperty(t *testing.T) {
	fs := dfs.NewMemFS()
	f := func(keys []string, vals [][]byte, shards uint8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		records := make([]mapreduce.Pair, n)
		for i := 0; i < n; i++ {
			records[i] = mapreduce.Pair{Key: keys[i], Value: vals[i]}
		}
		if err := SavePairs(fs, "prop", records, int(shards%6)+1); err != nil {
			return false
		}
		got, err := LoadPairs(fs, "prop")
		if err != nil || len(got) != n {
			return false
		}
		for i := range records {
			if got[i].Key != records[i].Key || string(got[i].Value) != string(records[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadDataset(t *testing.T) {
	fs := dfs.NewMemFS()
	ds := dataset.Blobs("dsio", 200, 5, 3, 100, 2, 9)
	if err := SaveDataset(fs, "data/blobs", ds, 3); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(fs, "data/blobs", "dsio")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ds.N() || got.Dim() != ds.Dim() {
		t.Fatalf("shape %dx%d", got.N(), got.Dim())
	}
	for i := range ds.Points {
		for j := range ds.Points[i].Pos {
			if got.Points[i].Pos[j] != ds.Points[i].Pos[j] {
				t.Fatalf("coordinate %d/%d changed", i, j)
			}
		}
		if got.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestSaveLoadDatasetUnlabeled(t *testing.T) {
	fs := dfs.NewMemFS()
	ds := dataset.Spatial3D(150, 2)
	if err := SaveDataset(fs, "data/roads", ds, 2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(fs, "data/roads", "roads")
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != nil {
		t.Fatal("unlabeled set grew labels")
	}
	if got.N() != 150 {
		t.Fatalf("N = %d", got.N())
	}
}

func TestDatasetThroughRealDFS(t *testing.T) {
	nn, err := dfs.NewNameNode("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	for i := 0; i < 2; i++ {
		dn, err := dfs.StartDataNode(nn.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer dn.Close()
	}
	c, err := dfs.NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.BlockSize = 4096 // force multi-block parts

	ds := dataset.Blobs("rpc-dsio", 300, 8, 2, 100, 2, 4)
	if err := SaveDataset(c, "staged/blobs", ds, 4); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(c, "staged/blobs", "rpc-dsio")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ds.N() {
		t.Fatalf("N = %d", got.N())
	}
}

func TestLoadPartAndListParts(t *testing.T) {
	fs := dfs.NewMemFS()
	records := []mapreduce.Pair{
		{Key: "x", Value: []byte("1")},
		{Key: "y", Value: []byte("2")},
		{Key: "z", Value: []byte("3")},
	}
	if err := SavePairs(fs, "lp", records, 3); err != nil {
		t.Fatal(err)
	}
	parts, err := ListParts(fs, "lp")
	if err != nil || len(parts) != 3 {
		t.Fatalf("ListParts = %v, %v", parts, err)
	}
	var total int
	for _, name := range parts {
		recs, err := LoadPart(fs, name)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	if total != 3 {
		t.Fatalf("parts hold %d records", total)
	}
	if _, err := ListParts(fs, "missing"); err == nil {
		t.Fatal("want error for missing prefix")
	}
	if _, err := LoadPart(fs, "missing/part-00000"); err == nil {
		t.Fatal("want error for missing part")
	}
}

func TestLoadPartCorrupt(t *testing.T) {
	fs := dfs.NewMemFS()
	if err := fs.Put("bad/part-00000", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPart(fs, "bad/part-00000"); err == nil {
		t.Fatal("want error for corrupt part")
	}
	if _, err := LoadPairs(fs, "bad"); err == nil {
		t.Fatal("want error for corrupt record set")
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	fs := dfs.NewMemFS()
	// Point record with trailing junk.
	if err := SavePairs(fs, "junk", []mapreduce.Pair{{Value: []byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF}}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(fs, "junk", "junk"); err == nil {
		t.Fatal("want error for trailing bytes")
	}
	if _, err := LoadDataset(fs, "absent", "absent"); err == nil {
		t.Fatal("want error for missing dataset")
	}
}

func TestVerifyPrefix(t *testing.T) {
	fs := dfs.NewMemFS()
	records := make([]mapreduce.Pair, 25)
	for i := range records {
		records[i] = mapreduce.Pair{Key: "k", Value: []byte{byte(i)}}
	}
	if err := SavePairs(fs, "v/in", records, 4); err != nil {
		t.Fatal(err)
	}
	parts, recs, err := VerifyPrefix(fs, "v/in")
	if err != nil {
		t.Fatal(err)
	}
	if parts != 4 || recs != 25 {
		t.Fatalf("VerifyPrefix = %d parts, %d records; want 4, 25", parts, recs)
	}
	// A structurally broken part must fail verification.
	if err := fs.Put("v/in/part-00002", []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyPrefix(fs, "v/in"); err == nil {
		t.Fatal("want error for broken part")
	}
	if _, _, err := VerifyPrefix(fs, "v/none"); err == nil {
		t.Fatal("want error for missing prefix")
	}
}
