// Package dfsio bridges the mini-DFS and the MapReduce framework: it
// persists record sets ([]mapreduce.Pair) and data sets as DFS files, the
// way Hadoop jobs stage inputs and outputs in HDFS. Records use a
// length-prefixed binary framing (not CSV) so arbitrary binary values —
// the point codecs — round-trip exactly.
//
// Layout: a record set is stored as numbered part files under a directory
// prefix ("path/part-00000", "path/part-00001", …), one part per shard,
// mirroring Hadoop's output layout. Loading concatenates parts in order.
package dfsio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/points"
)

// SaveModel stores an encoded cluster model artifact as a single DFS file.
// The artifact's own header checksum rides inside the blob, on top of the
// DFS's per-replica block checksums.
func SaveModel(fs dfs.FileSystem, name string, m *model.Model) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return fs.Put(name, data)
}

// LoadModel fetches and verifies a cluster model artifact from the DFS.
func LoadModel(fs dfs.FileSystem, name string) (*model.Model, error) {
	data, err := fs.Get(name)
	if err != nil {
		return nil, err
	}
	return model.Decode(data)
}

// partName formats the canonical shard file name.
func partName(prefix string, i int) string {
	return fmt.Sprintf("%s/part-%05d", prefix, i)
}

// SavePairs writes records as `shards` part files under prefix. Existing
// parts under the prefix are replaced; leftover higher-numbered parts from
// a previous larger run are deleted.
func SavePairs(fs dfs.FileSystem, prefix string, records []mapreduce.Pair, shards int) error {
	if shards <= 0 {
		shards = 1
	}
	// Delete stale parts first so a smaller rewrite cannot resurrect them.
	old, err := fs.List(prefix + "/part-")
	if err != nil {
		return err
	}
	for _, name := range old {
		if err := fs.Delete(name); err != nil {
			return err
		}
	}
	per := (len(records) + shards - 1) / shards
	if per == 0 {
		per = 1
	}
	part := 0
	for off := 0; off == 0 || off < len(records); off += per {
		end := off + per
		if end > len(records) {
			end = len(records)
		}
		var buf bytes.Buffer
		if err := encodePairs(&buf, records[off:end]); err != nil {
			return err
		}
		if err := fs.Put(partName(prefix, part), buf.Bytes()); err != nil {
			return err
		}
		part++
		if len(records) == 0 {
			break
		}
	}
	return nil
}

// LoadPairs reads every part file under prefix, in order.
func LoadPairs(fs dfs.FileSystem, prefix string) ([]mapreduce.Pair, error) {
	names, err := fs.List(prefix + "/part-")
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dfsio: no parts under %s", prefix)
	}
	var records []mapreduce.Pair
	for _, name := range names {
		data, err := fs.Get(name)
		if err != nil {
			return nil, err
		}
		part, err := decodePairs(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("dfsio: %s: %w", name, err)
		}
		records = append(records, part...)
	}
	return records, nil
}

// record framing: uint32 keyLen | key | uint32 valLen | value.
func encodePairs(w io.Writer, records []mapreduce.Pair) error {
	var hdr [4]byte
	for _, r := range records {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(r.Key)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, r.Key); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(r.Value)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(r.Value); err != nil {
			return err
		}
	}
	return nil
}

func decodePairs(r io.Reader) ([]mapreduce.Pair, error) {
	var records []mapreduce.Pair
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return records, nil
			}
			return nil, err
		}
		key := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		val := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(r, val); err != nil {
			return nil, err
		}
		records = append(records, mapreduce.Pair{Key: string(key), Value: val})
	}
}

// SaveDataset stores a data set under prefix: points as binary records
// (and, when labels exist, a parallel "<prefix>.labels" CSV file).
func SaveDataset(fs dfs.FileSystem, prefix string, ds *points.Dataset, shards int) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	records := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		records[i] = mapreduce.Pair{Value: points.EncodePoint(p)}
	}
	if err := SavePairs(fs, prefix, records, shards); err != nil {
		return err
	}
	if ds.Labels != nil {
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, &points.Dataset{
			Name:   ds.Name,
			Points: labelCarrier(len(ds.Labels)),
			Labels: ds.Labels,
		}); err != nil {
			return err
		}
		return fs.Put(prefix+".labels", buf.Bytes())
	}
	return nil
}

// labelCarrier builds 1-D dummy points so labels can reuse the CSV codec.
func labelCarrier(n int) []points.Point {
	ps := make([]points.Point, n)
	for i := range ps {
		ps[i] = points.Point{ID: int32(i), Pos: points.Vector{0}}
	}
	return ps
}

// LoadDataset restores a data set saved by SaveDataset.
func LoadDataset(fs dfs.FileSystem, prefix, name string) (*points.Dataset, error) {
	records, err := LoadPairs(fs, prefix)
	if err != nil {
		return nil, err
	}
	ds := &points.Dataset{Name: name, Points: make([]points.Point, len(records))}
	for i, r := range records {
		p, rest, err := points.DecodePoint(r.Value)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("dfsio: %d trailing bytes in point record %d", len(rest), i)
		}
		ds.Points[i] = p
	}
	if raw, err := fs.Get(prefix + ".labels"); err == nil {
		carrier, err := dataset.ReadCSV(bytes.NewReader(raw), name, true)
		if err != nil {
			return nil, err
		}
		if carrier.N() != ds.N() {
			return nil, fmt.Errorf("dfsio: %d labels for %d points", carrier.N(), ds.N())
		}
		ds.Labels = carrier.Labels
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadPart reads a single part file written by SavePairs — the unit a
// distributed map task consumes when a job's input is staged in the DFS.
func LoadPart(fs dfs.FileSystem, name string) ([]mapreduce.Pair, error) {
	data, err := fs.Get(name)
	if err != nil {
		return nil, err
	}
	records, err := decodePairs(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dfsio: %s: %w", name, err)
	}
	return records, nil
}

// VerifyPrefix walks every part file under prefix and fully decodes it,
// returning the part and record counts. Because Get re-verifies block
// checksums end-to-end and the record framing is length-prefixed, a clean
// return means the staged data is structurally intact on every replica
// path the read took — the `mrd dfsadmin verify` integrity check.
func VerifyPrefix(fs dfs.FileSystem, prefix string) (parts, records int, err error) {
	names, err := ListParts(fs, prefix)
	if err != nil {
		return 0, 0, err
	}
	for _, name := range names {
		recs, err := LoadPart(fs, name)
		if err != nil {
			return parts, records, fmt.Errorf("dfsio: verify %s: %w", name, err)
		}
		parts++
		records += len(recs)
	}
	return parts, records, nil
}

// ListParts returns the part files under prefix, in shard order.
func ListParts(fs dfs.FileSystem, prefix string) ([]string, error) {
	names, err := fs.List(prefix + "/part-")
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dfsio: no parts under %s", prefix)
	}
	return names, nil
}
