package dfsio_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/dfsio"
)

// Staging a data set into the DFS as Hadoop-style part files.
func ExampleSaveDataset() {
	fs := dfs.NewMemFS()
	ds := dataset.Blobs("staged", 100, 3, 2, 50, 2, 1)
	if err := dfsio.SaveDataset(fs, "input/blobs", ds, 4); err != nil {
		panic(err)
	}
	parts, err := dfsio.ListParts(fs, "input/blobs")
	if err != nil {
		panic(err)
	}
	back, err := dfsio.LoadDataset(fs, "input/blobs", "staged")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d part files, %d points restored, labels kept: %v\n",
		len(parts), back.N(), back.Labels != nil)
	// Output:
	// 4 part files, 100 points restored, labels kept: true
}
