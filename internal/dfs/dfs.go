// Package dfs is a miniature distributed file system standing in for HDFS,
// the storage substrate the reproduced paper's Hadoop cluster used. It
// provides:
//
//   - FileSystem: a small blob-store interface (Put/Get/List/Delete/Stat);
//   - MemFS: an in-process implementation for tests and the local engine;
//   - NameNode / DataNode / Client: a replicated block store over net/rpc —
//     files are split into fixed-size blocks, each block is written to R
//     datanodes, and reads fall back across replicas when a datanode dies.
//
// The block store has the three durability mechanisms the HDFS lineage
// rests on:
//
//   - Heartbeats: every datanode reports liveness and its full block
//     inventory to the namenode on a configurable interval; a node silent
//     past NameNodeOptions.HeartbeatTimeout is declared dead and excluded
//     from placement, and block lookups order replicas live-first.
//   - Re-replication: a background sweep on the namenode finds blocks
//     with fewer live replicas than the target and orders a surviving
//     holder to push a copy to a new node (the order rides on a heartbeat
//     reply; completion is confirmed by the target's next block report).
//     Progress is visible as dfs.* counters and "rereplicate" obs spans.
//   - Checksums: every replica stores the CRC32-C of its payload; reads
//     verify it, quarantine and report corrupt copies, and fail over to a
//     healthy replica while re-replication restores the lost copy.
//
// The design remains deliberately teaching-scale: one namenode holding
// all metadata in memory (a single point of failure — see OPERATIONS.md),
// push-based writes from the client to each replica, and whole-block
// reads. Fault injection for tests lives in internal/chaos and hooks in
// through DataNode.SetHooks and DataNode.Corrupt.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FileInfo describes a stored file.
type FileInfo struct {
	Name   string
	Size   int64
	Blocks int
}

// FileSystem is the storage abstraction jobs and tools write through.
type FileSystem interface {
	// Put stores data under name, replacing any existing file.
	Put(name string, data []byte) error
	// Get returns the full contents of name.
	Get(name string) ([]byte, error)
	// List returns the names with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes name; deleting a missing file is an error.
	Delete(name string) error
	// Stat describes name.
	Stat(name string) (FileInfo, error)
}

// MemFS is an in-memory FileSystem, safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Put implements FileSystem.
func (m *MemFS) Put(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// Get implements FileSystem.
func (m *MemFS) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", name)
	}
	return append([]byte(nil), data...), nil
}

// List implements FileSystem.
func (m *MemFS) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var names []string
	for n := range m.files {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements FileSystem.
func (m *MemFS) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("dfs: %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// Stat implements FileSystem.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("dfs: %s: no such file", name)
	}
	return FileInfo{Name: name, Size: int64(len(data)), Blocks: 1}, nil
}
