// Package dfs is a miniature distributed file system standing in for HDFS,
// the storage substrate the reproduced paper's Hadoop cluster used. It
// provides:
//
//   - FileSystem: a small blob-store interface (Put/Get/List/Delete/Stat);
//   - MemFS: an in-process implementation for tests and the local engine;
//   - NameNode / DataNode / Client: a replicated block store over net/rpc —
//     files are split into fixed-size blocks, each block is written to R
//     datanodes, and reads fall back across replicas when a datanode dies.
//
// The design is deliberately a teaching-scale HDFS: one namenode holding
// all metadata in memory, push-based writes from the client to each
// replica, and no re-replication daemon (a lost replica is only noticed —
// and routed around — at read time).
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FileInfo describes a stored file.
type FileInfo struct {
	Name   string
	Size   int64
	Blocks int
}

// FileSystem is the storage abstraction jobs and tools write through.
type FileSystem interface {
	// Put stores data under name, replacing any existing file.
	Put(name string, data []byte) error
	// Get returns the full contents of name.
	Get(name string) ([]byte, error)
	// List returns the names with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes name; deleting a missing file is an error.
	Delete(name string) error
	// Stat describes name.
	Stat(name string) (FileInfo, error)
}

// MemFS is an in-memory FileSystem, safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Put implements FileSystem.
func (m *MemFS) Put(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// Get implements FileSystem.
func (m *MemFS) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", name)
	}
	return append([]byte(nil), data...), nil
}

// List implements FileSystem.
func (m *MemFS) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var names []string
	for n := range m.files {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements FileSystem.
func (m *MemFS) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("dfs: %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// Stat implements FileSystem.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("dfs: %s: no such file", name)
	}
	return FileInfo{Name: name, Size: int64(len(data)), Blocks: 1}, nil
}
