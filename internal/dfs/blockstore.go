package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// memStore keeps replicas in a map — the default for tests and the
// in-process examples.
type memStore struct {
	blocks map[int64][]byte
}

func newMemStore() *memStore { return &memStore{blocks: make(map[int64][]byte)} }

func (s *memStore) put(id int64, data []byte) error {
	s.blocks[id] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) get(id int64) ([]byte, bool, error) {
	data, ok := s.blocks[id]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

func (s *memStore) delete(id int64) error {
	delete(s.blocks, id)
	return nil
}

func (s *memStore) count() (int, error) { return len(s.blocks), nil }

// dirStore keeps each replica as a file "blk_<id>" under a directory, so a
// datanode's data outlives the process and memory use stays bounded —
// the HDFS storage model. Existing block files are served after restart.
type dirStore struct {
	dir string
}

func newDirStore(dir string) (*dirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: block dir: %w", err)
	}
	return &dirStore{dir: dir}, nil
}

func (s *dirStore) path(id int64) string {
	return filepath.Join(s.dir, "blk_"+strconv.FormatInt(id, 10))
}

func (s *dirStore) put(id int64, data []byte) error {
	// Write-then-rename so a crashed write never leaves a torn replica.
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(id))
}

func (s *dirStore) get(id int64) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (s *dirStore) delete(id int64) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (s *dirStore) count() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "blk_") && !strings.HasSuffix(e.Name(), ".tmp") {
			n++
		}
	}
	return n, nil
}
