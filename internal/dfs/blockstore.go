package dfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// castagnoli is the CRC32-C polynomial table — the same checksum family
// HDFS uses for block data. Every replica stores the checksum of its
// payload at write time; reads recompute and compare, so silent bit rot is
// detected at the datanode before bytes ever reach a client.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockChecksum returns the CRC32-C checksum of a block payload.
func BlockChecksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// blockStore abstracts replica storage. put computes and stores the
// payload's CRC32-C; get returns the payload with the checksum recorded at
// write time (verification is the datanode's job, so a store never blocks
// a read on a mismatch). corrupt flips one stored payload bit WITHOUT
// touching the recorded checksum — the fault-injection entry point the
// chaos harness uses to simulate disk bit rot.
type blockStore interface {
	put(id int64, data []byte) error
	get(id int64) (data []byte, crc uint32, ok bool, err error)
	delete(id int64) error
	ids() ([]int64, error)
	count() (int, error)
	corrupt(id int64, seed int) error
}

// memStore keeps replicas in a map — the default for tests and the
// in-process examples.
type memStore struct {
	blocks map[int64][]byte
	crcs   map[int64]uint32
}

func newMemStore() *memStore {
	return &memStore{blocks: make(map[int64][]byte), crcs: make(map[int64]uint32)}
}

func (s *memStore) put(id int64, data []byte) error {
	s.blocks[id] = append([]byte(nil), data...)
	s.crcs[id] = BlockChecksum(data)
	return nil
}

func (s *memStore) get(id int64) ([]byte, uint32, bool, error) {
	data, ok := s.blocks[id]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), data...), s.crcs[id], true, nil
}

func (s *memStore) delete(id int64) error {
	delete(s.blocks, id)
	delete(s.crcs, id)
	return nil
}

func (s *memStore) ids() ([]int64, error) {
	out := make([]int64, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	return out, nil
}

func (s *memStore) count() (int, error) { return len(s.blocks), nil }

func (s *memStore) corrupt(id int64, seed int) error {
	data, ok := s.blocks[id]
	if !ok {
		return fmt.Errorf("dfs: corrupt: block %d not stored", id)
	}
	if len(data) == 0 {
		// No payload bit to flip; poison the recorded checksum instead.
		s.crcs[id]++
		return nil
	}
	flipBit(data, seed)
	return nil
}

// flipBit flips one bit of data chosen by seed (callers that need
// determinism pass a seeded value).
func flipBit(data []byte, seed int) {
	if len(data) == 0 {
		return
	}
	if seed < 0 {
		seed = -seed
	}
	data[seed%len(data)] ^= 1 << (seed % 8)
}

// dirStore keeps each replica as a file "blk_<id>" under a directory, so a
// datanode's data outlives the process and memory use stays bounded —
// the HDFS storage model. Existing block files are served after restart.
// File layout: a 4-byte little-endian CRC32-C header followed by the
// payload, so checksums survive restarts with the data they cover.
type dirStore struct {
	dir string
}

const crcHeaderLen = 4

func newDirStore(dir string) (*dirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: block dir: %w", err)
	}
	return &dirStore{dir: dir}, nil
}

func (s *dirStore) path(id int64) string {
	return filepath.Join(s.dir, "blk_"+strconv.FormatInt(id, 10))
}

func (s *dirStore) put(id int64, data []byte) error {
	// Write-then-rename so a crashed write never leaves a torn replica.
	buf := make([]byte, crcHeaderLen+len(data))
	binary.LittleEndian.PutUint32(buf, BlockChecksum(data))
	copy(buf[crcHeaderLen:], data)
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(id))
}

func (s *dirStore) get(id int64) ([]byte, uint32, bool, error) {
	raw, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	if len(raw) < crcHeaderLen {
		return nil, 0, false, fmt.Errorf("dfs: block %d: truncated replica file", id)
	}
	return raw[crcHeaderLen:], binary.LittleEndian.Uint32(raw), true, nil
}

func (s *dirStore) delete(id int64) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (s *dirStore) ids() ([]int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "blk_") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimPrefix(name, "blk_"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, id)
	}
	return out, nil
}

func (s *dirStore) count() (int, error) {
	ids, err := s.ids()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

func (s *dirStore) corrupt(id int64, seed int) error {
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return fmt.Errorf("dfs: corrupt: %w", err)
	}
	if len(raw) <= crcHeaderLen {
		// Empty payload: poison the stored checksum.
		raw[0]++
	} else {
		flipBit(raw[crcHeaderLen:], seed)
	}
	return os.WriteFile(s.path(id), raw, 0o644)
}
