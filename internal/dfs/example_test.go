package dfs_test

import (
	"fmt"

	"repro/internal/dfs"
)

// A complete mini-DFS session: namenode, two datanodes, replicated file.
func Example() {
	nn, err := dfs.NewNameNode("127.0.0.1:0", 2)
	if err != nil {
		panic(err)
	}
	defer nn.Close()
	for i := 0; i < 2; i++ {
		dn, err := dfs.StartDataNode(nn.Addr(), "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer dn.Close()
	}
	client, err := dfs.NewClient(nn.Addr())
	if err != nil {
		panic(err)
	}
	defer client.Close()

	if err := client.Put("greetings/hello.txt", []byte("hello, dfs")); err != nil {
		panic(err)
	}
	data, err := client.Get("greetings/hello.txt")
	if err != nil {
		panic(err)
	}
	info, err := client.Stat("greetings/hello.txt")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (%d bytes, %d block)\n", data, info.Size, info.Blocks)
	// Output:
	// hello, dfs (10 bytes, 1 block)
}
