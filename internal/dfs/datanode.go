package dfs

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// BlockHooks are fault-injection points the chaos harness installs on a
// datanode (via SetHooks). A hook returning an error aborts the RPC; a
// hook may also kill its own node to simulate a crash mid-request.
type BlockHooks struct {
	// BeforeRead runs before a replica is served to a client.
	BeforeRead func(id int64) error
	// BeforeWrite runs before a replica is stored.
	BeforeWrite func(id int64) error
}

// DataNodeOptions configures a datanode. The zero value gives the
// documented defaults.
type DataNodeOptions struct {
	// Dir, when non-empty, stores replicas as files under it (created if
	// missing) so data outlives the process; empty means memory-backed.
	Dir string
	// HeartbeatInterval is the period of the heartbeat + block report sent
	// to the namenode (default 500ms).
	HeartbeatInterval time.Duration
	// Hooks are optional fault-injection points (see BlockHooks).
	Hooks BlockHooks
}

// DataNode stores block replicas — in memory by default, or as files in a
// directory so replicas outlive the process and memory stays bounded —
// serves them over RPC, heartbeats its block report to the namenode, and
// executes re-replication orders piggybacked on heartbeat replies.
type DataNode struct {
	lis      net.Listener
	addr     string
	nameAddr string
	hbEvery  time.Duration

	mu    sync.RWMutex
	store blockStore
	hooks BlockHooks

	connMu sync.Mutex
	conns  map[net.Conn]bool
	nn     *rpc.Client

	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// StartDataNode launches a memory-backed datanode listening on listenAddr
// and registers it with the namenode at nameAddr.
func StartDataNode(nameAddr, listenAddr string) (*DataNode, error) {
	return StartDataNodeOpts(nameAddr, listenAddr, DataNodeOptions{})
}

// StartDataNodeDir launches a disk-backed datanode: replicas are stored as
// files under dir (created if missing).
func StartDataNodeDir(nameAddr, listenAddr, dir string) (*DataNode, error) {
	return StartDataNodeOpts(nameAddr, listenAddr, DataNodeOptions{Dir: dir})
}

// StartDataNodeOpts launches a datanode with explicit options.
func StartDataNodeOpts(nameAddr, listenAddr string, opts DataNodeOptions) (*DataNode, error) {
	var st blockStore = newMemStore()
	if opts.Dir != "" {
		ds, err := newDirStore(opts.Dir)
		if err != nil {
			return nil, err
		}
		st = ds
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("dfs: datanode listen: %w", err)
	}
	d := &DataNode{
		lis:      lis,
		addr:     lis.Addr().String(),
		nameAddr: nameAddr,
		hbEvery:  opts.HeartbeatInterval,
		store:    st,
		hooks:    opts.Hooks,
		conns:    make(map[net.Conn]bool),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("DataNode", &dataNodeRPC{d: d}); err != nil {
		lis.Close()
		return nil, err
	}
	go d.acceptLoop(srv)

	client, err := dialRPC(nameAddr)
	if err != nil {
		lis.Close()
		return nil, err
	}
	var reply RegisterNodeReply
	if err := client.Call("NameNode.RegisterNode", &RegisterNodeArgs{Addr: d.addr}, &reply); err != nil {
		client.Close()
		lis.Close()
		return nil, fmt.Errorf("dfs: register datanode: %w", err)
	}
	d.connMu.Lock()
	d.nn = client
	d.connMu.Unlock()
	go d.heartbeatLoop()
	return d, nil
}

// acceptLoop serves RPC connections, tracking them so Close can sever
// in-flight requests (hard-kill semantics for fault injection).
func (d *DataNode) acceptLoop(srv *rpc.Server) {
	for {
		conn, err := d.lis.Accept()
		if err != nil {
			return
		}
		d.connMu.Lock()
		if d.conns == nil { // closed concurrently
			d.connMu.Unlock()
			conn.Close()
			return
		}
		d.conns[conn] = true
		d.connMu.Unlock()
		go func() {
			srv.ServeConn(conn)
			d.connMu.Lock()
			delete(d.conns, conn)
			d.connMu.Unlock()
			conn.Close()
		}()
	}
}

// Addr returns the datanode's dialable address.
func (d *DataNode) Addr() string { return d.addr }

// Close stops the datanode immediately: the listener closes, in-flight
// connections are severed, and heartbeats stop — to the rest of the
// cluster this is indistinguishable from a crash. Safe to call from
// inside a BlockHooks hook (it does not wait for RPCs to drain).
func (d *DataNode) Close() error {
	d.closeOnce.Do(func() {
		close(d.quit)
		d.closeErr = d.lis.Close()
		d.connMu.Lock()
		for conn := range d.conns {
			conn.Close()
		}
		d.conns = nil
		if d.nn != nil {
			d.nn.Close()
			d.nn = nil
		}
		d.connMu.Unlock()
	})
	return d.closeErr
}

// SetHooks installs fault-injection hooks (pass the zero value to clear).
func (d *DataNode) SetHooks(h BlockHooks) {
	d.mu.Lock()
	d.hooks = h
	d.mu.Unlock()
}

// BlockCount reports how many blocks this node holds.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.store.count()
	if err != nil {
		return -1
	}
	return n
}

// BlockIDs lists the block ids this node holds.
func (d *DataNode) BlockIDs() []int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids, err := d.store.ids()
	if err != nil {
		return nil
	}
	return ids
}

// Corrupt flips one bit (chosen by seed) in the stored payload of block
// id without updating its checksum — simulated disk bit rot for tests.
func (d *DataNode) Corrupt(id int64, seed int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.corrupt(id, seed)
}

// namenode returns the cached namenode client, re-dialing if needed.
func (d *DataNode) namenode() (*rpc.Client, error) {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if d.conns == nil {
		return nil, fmt.Errorf("dfs: datanode closed")
	}
	if d.nn != nil {
		return d.nn, nil
	}
	c, err := dialRPC(d.nameAddr)
	if err != nil {
		return nil, err
	}
	d.nn = c
	return c, nil
}

// dropNamenode discards a failed namenode connection.
func (d *DataNode) dropNamenode() {
	d.connMu.Lock()
	if d.nn != nil {
		d.nn.Close()
		d.nn = nil
	}
	d.connMu.Unlock()
}

// heartbeatLoop sends the periodic heartbeat + block report and executes
// any commands piggybacked on the reply.
func (d *DataNode) heartbeatLoop() {
	defer close(d.done)
	d.heartbeat() // immediate first report (covers restart with a disk store)
	t := time.NewTicker(d.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			d.heartbeat()
		}
	}
}

func (d *DataNode) heartbeat() {
	d.mu.RLock()
	ids, err := d.store.ids()
	d.mu.RUnlock()
	if err != nil {
		return
	}
	nn, err := d.namenode()
	if err != nil {
		return
	}
	args := HeartbeatArgs{Addr: d.addr, Blocks: ids}
	var reply HeartbeatReply
	if err := nn.Call("NameNode.Heartbeat", &args, &reply); err != nil {
		d.dropNamenode()
		return
	}
	for _, cmd := range reply.Replicate {
		d.replicate(cmd)
	}
	if len(reply.Delete) > 0 {
		d.mu.Lock()
		for _, id := range reply.Delete {
			d.store.delete(id)
		}
		d.mu.Unlock()
	}
}

// replicate pushes one local replica to a peer datanode, verifying the
// checksum first: a corrupt copy is quarantined and reported instead of
// propagated.
func (d *DataNode) replicate(cmd ReplicateCmd) {
	d.mu.RLock()
	data, crc, ok, err := d.store.get(cmd.ID)
	d.mu.RUnlock()
	if err != nil || !ok {
		return
	}
	if BlockChecksum(data) != crc {
		d.quarantine(cmd.ID)
		return
	}
	peer, err := dialRPC(cmd.Target)
	if err != nil {
		return
	}
	defer peer.Close()
	var rep WriteBlockReply
	peer.Call("DataNode.WriteBlock", &WriteBlockArgs{ID: cmd.ID, Data: data}, &rep)
	// Success is confirmed by the target's next block report, not here.
}

// quarantine drops a corrupt replica and reports it so the namenode
// re-replicates the block from a healthy copy.
func (d *DataNode) quarantine(id int64) {
	d.mu.Lock()
	d.store.delete(id)
	d.mu.Unlock()
	if nn, err := d.namenode(); err == nil {
		var rep ReportCorruptReply
		if err := nn.Call("NameNode.ReportCorrupt", &ReportCorruptArgs{Addr: d.addr, ID: id}, &rep); err != nil {
			d.dropNamenode()
		}
	}
}

type dataNodeRPC struct{ d *DataNode }

// WriteBlock stores one replica (checksum computed by the store).
func (r *dataNodeRPC) WriteBlock(args *WriteBlockArgs, reply *WriteBlockReply) error {
	d := r.d
	d.mu.RLock()
	hook := d.hooks.BeforeWrite
	d.mu.RUnlock()
	if hook != nil {
		if err := hook(args.ID); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.put(args.ID, args.Data)
}

// ReadBlock serves one replica, verifying its checksum first: a corrupt
// replica is quarantined, reported to the namenode, and the read fails so
// the client fails over to a healthy copy.
func (r *dataNodeRPC) ReadBlock(args *ReadBlockArgs, reply *ReadBlockReply) error {
	d := r.d
	d.mu.RLock()
	hook := d.hooks.BeforeRead
	d.mu.RUnlock()
	if hook != nil {
		if err := hook(args.ID); err != nil {
			return err
		}
	}
	d.mu.RLock()
	data, crc, ok, err := d.store.get(args.ID)
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("dfs: block %d not on this node", args.ID)
	}
	if BlockChecksum(data) != crc {
		d.quarantine(args.ID)
		return fmt.Errorf("dfs: block %d failed checksum on %s (replica quarantined)", args.ID, d.addr)
	}
	reply.Data = data
	reply.Crc = crc
	return nil
}

// DeleteBlocks garbage-collects replicas.
func (r *dataNodeRPC) DeleteBlocks(args *DeleteBlocksArgs, reply *DeleteBlocksReply) error {
	r.d.mu.Lock()
	defer r.d.mu.Unlock()
	for _, id := range args.IDs {
		if err := r.d.store.delete(id); err != nil {
			return err
		}
	}
	return nil
}

func dialRPC(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
