package dfs

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// DataNode stores block replicas — in memory by default, or as files in a
// directory (StartDataNodeDir) so replicas outlive the process and memory
// stays bounded — and serves them over RPC.
type DataNode struct {
	lis  net.Listener
	addr string

	mu    sync.RWMutex
	store blockStore
}

// blockStore abstracts replica storage.
type blockStore interface {
	put(id int64, data []byte) error
	get(id int64) ([]byte, bool, error)
	delete(id int64) error
	count() (int, error)
}

// StartDataNode launches a memory-backed datanode listening on listenAddr
// and registers it with the namenode at nameAddr.
func StartDataNode(nameAddr, listenAddr string) (*DataNode, error) {
	return startDataNode(nameAddr, listenAddr, newMemStore())
}

// StartDataNodeDir launches a disk-backed datanode: replicas are stored as
// files under dir (created if missing).
func StartDataNodeDir(nameAddr, listenAddr, dir string) (*DataNode, error) {
	st, err := newDirStore(dir)
	if err != nil {
		return nil, err
	}
	return startDataNode(nameAddr, listenAddr, st)
}

func startDataNode(nameAddr, listenAddr string, st blockStore) (*DataNode, error) {
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("dfs: datanode listen: %w", err)
	}
	d := &DataNode{
		lis:   lis,
		addr:  lis.Addr().String(),
		store: st,
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("DataNode", &dataNodeRPC{d: d}); err != nil {
		lis.Close()
		return nil, err
	}
	go acceptRPC(lis, srv)

	client, err := dialRPC(nameAddr)
	if err != nil {
		lis.Close()
		return nil, err
	}
	defer client.Close()
	var reply RegisterNodeReply
	if err := client.Call("NameNode.RegisterNode", &RegisterNodeArgs{Addr: d.addr}, &reply); err != nil {
		lis.Close()
		return nil, fmt.Errorf("dfs: register datanode: %w", err)
	}
	return d, nil
}

// Addr returns the datanode's dialable address.
func (d *DataNode) Addr() string { return d.addr }

// Close stops the datanode; its replicas become unreachable.
func (d *DataNode) Close() error { return d.lis.Close() }

// BlockCount reports how many blocks this node holds.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.store.count()
	if err != nil {
		return -1
	}
	return n
}

type dataNodeRPC struct{ d *DataNode }

// WriteBlock stores one replica.
func (r *dataNodeRPC) WriteBlock(args *WriteBlockArgs, reply *WriteBlockReply) error {
	r.d.mu.Lock()
	defer r.d.mu.Unlock()
	return r.d.store.put(args.ID, args.Data)
}

// ReadBlock serves one replica.
func (r *dataNodeRPC) ReadBlock(args *ReadBlockArgs, reply *ReadBlockReply) error {
	r.d.mu.RLock()
	defer r.d.mu.RUnlock()
	data, ok, err := r.d.store.get(args.ID)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("dfs: block %d not on this node", args.ID)
	}
	reply.Data = data
	return nil
}

// DeleteBlocks garbage-collects replicas.
func (r *dataNodeRPC) DeleteBlocks(args *DeleteBlocksArgs, reply *DeleteBlocksReply) error {
	r.d.mu.Lock()
	defer r.d.mu.Unlock()
	for _, id := range args.IDs {
		if err := r.d.store.delete(id); err != nil {
			return err
		}
	}
	return nil
}

func dialRPC(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
