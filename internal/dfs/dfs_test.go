package dfs

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

func startDFS(t *testing.T, nodes, replication int) (*NameNode, []*DataNode, *Client) {
	t.Helper()
	nn, err := NewNameNode("127.0.0.1:0", replication)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nn.Close() })
	var dns []*DataNode
	for i := 0; i < nodes; i++ {
		dn, err := StartDataNode(nn.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dns = append(dns, dn)
		t.Cleanup(func() { dn.Close() })
	}
	c, err := NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return nn, dns, c
}

// fsContract exercises the FileSystem interface generically.
func fsContract(t *testing.T, fs FileSystem) {
	t.Helper()
	if err := fs.Put("dir/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("dir/b.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("other.txt", []byte("!")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("dir/a.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get a.txt = %q, %v", got, err)
	}
	names, err := fs.List("dir/")
	if err != nil || len(names) != 2 || names[0] != "dir/a.txt" || names[1] != "dir/b.txt" {
		t.Fatalf("List dir/ = %v, %v", names, err)
	}
	info, err := fs.Stat("dir/b.txt")
	if err != nil || info.Size != 5 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	// Overwrite.
	if err := fs.Put("dir/a.txt", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Get("dir/a.txt")
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	if err := fs.Delete("dir/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("dir/a.txt"); err == nil {
		t.Fatal("Get after delete should fail")
	}
	if err := fs.Delete("dir/a.txt"); err == nil {
		t.Fatal("double Delete should fail")
	}
	if _, err := fs.Get("missing"); err == nil {
		t.Fatal("Get missing should fail")
	}
}

func TestMemFSContract(t *testing.T) { fsContract(t, NewMemFS()) }

func TestClusterFSContract(t *testing.T) {
	_, _, c := startDFS(t, 3, 2)
	fsContract(t, c)
}

func TestMultiBlockRoundTrip(t *testing.T) {
	_, dns, c := startDFS(t, 3, 2)
	c.BlockSize = 100
	data := bytes.Repeat([]byte("0123456789"), 100) // 1000 bytes = 10 blocks
	if err := c.Put("big", data); err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat("big")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks != 10 || info.Size != 1000 {
		t.Fatalf("Stat = %+v, want 10 blocks of 1000 bytes", info)
	}
	got, err := c.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block content mismatch")
	}
	// Replication 2 across 3 nodes: 20 replicas total.
	total := 0
	for _, dn := range dns {
		total += dn.BlockCount()
	}
	if total != 20 {
		t.Fatalf("total replicas = %d, want 20", total)
	}
}

func TestReadSurvivesDataNodeFailure(t *testing.T) {
	_, dns, c := startDFS(t, 3, 2)
	c.BlockSize = 64
	data := bytes.Repeat([]byte("abcdefgh"), 64)
	if err := c.Put("resilient", data); err != nil {
		t.Fatal(err)
	}
	// Kill one datanode; with replication 2 every block still has a live
	// replica somewhere.
	dns[0].Close()
	got, err := c.Get("resilient")
	if err != nil {
		t.Fatalf("Get after datanode failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after failover")
	}
}

func TestEmptyFile(t *testing.T) {
	_, _, c := startDFS(t, 2, 2)
	if err := c.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
}

func TestDeleteGarbageCollectsReplicas(t *testing.T) {
	_, dns, c := startDFS(t, 2, 2)
	c.BlockSize = 32
	if err := c.Put("gc", bytes.Repeat([]byte("x"), 128)); err != nil {
		t.Fatal(err)
	}
	before := dns[0].BlockCount() + dns[1].BlockCount()
	if before == 0 {
		t.Fatal("no replicas written")
	}
	if err := c.Delete("gc"); err != nil {
		t.Fatal(err)
	}
	after := dns[0].BlockCount() + dns[1].BlockCount()
	if after != 0 {
		t.Fatalf("%d replicas left after delete", after)
	}
}

func TestPutWithoutDataNodesFails(t *testing.T) {
	nn, err := NewNameNode("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	c, err := NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("x", []byte("y")); err == nil {
		t.Fatal("Put with no datanodes should fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, _, c := startDFS(t, 3, 2)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("c%d/f%d", g, i)
				payload := []byte(fmt.Sprintf("payload-%d-%d", g, i))
				if err := c.Put(name, payload); err != nil {
					done <- err
					return
				}
				got, err := c.Get(name)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, payload) {
					done <- fmt.Errorf("mismatch at %s", name)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.List("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 160 {
		t.Fatalf("listed %d files, want 160", len(names))
	}
}

func TestDiskBackedDataNode(t *testing.T) {
	nn, err := NewNameNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	dir := t.TempDir()
	dn, err := StartDataNodeDir(nn.Addr(), "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dn.Close()
	c, err := NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.BlockSize = 64

	data := bytes.Repeat([]byte("disk!"), 100)
	if err := c.Put("on/disk", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("on/disk")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("disk round trip: %v", err)
	}
	// The replicas are real files on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if !e.IsDir() {
			files++
		}
	}
	if files != dn.BlockCount() || files == 0 {
		t.Fatalf("%d files on disk, BlockCount %d", files, dn.BlockCount())
	}
	// Delete garbage-collects the files.
	if err := c.Delete("on/disk"); err != nil {
		t.Fatal(err)
	}
	if n := dn.BlockCount(); n != 0 {
		t.Fatalf("%d blocks left on disk after delete", n)
	}
}

func TestDirStoreOverwriteAndMissing(t *testing.T) {
	st, err := newDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.put(7, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.put(7, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, crc, ok, err := st.get(7)
	if err != nil || !ok || string(data) != "v2" {
		t.Fatalf("overwrite: %q %v %v", data, ok, err)
	}
	if crc != BlockChecksum([]byte("v2")) {
		t.Fatalf("stored crc %08x does not match payload", crc)
	}
	if _, _, ok, err := st.get(99); ok || err != nil {
		t.Fatalf("missing block: ok=%v err=%v", ok, err)
	}
	if err := st.delete(99); err != nil {
		t.Fatalf("delete missing: %v", err)
	}
}
