package dfs

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
)

// Protocol types for the replicated block store.

// blockMeta names one block and where its replicas live.
type blockMeta struct {
	ID       int64
	Size     int
	Replicas []string // datanode addresses
}

type fileMeta struct {
	Name   string
	Size   int64
	Blocks []blockMeta
}

// RegisterNodeArgs / RegisterNodeReply: datanode sign-on.
type RegisterNodeArgs struct{ Addr string }

// RegisterNodeReply returns the namenode-assigned node id.
type RegisterNodeReply struct{ NodeID int }

// CreateArgs asks the namenode to allocate blocks for a file of the given
// sizes; the reply carries the replica placement per block.
type CreateArgs struct {
	Name       string
	BlockSizes []int
}

// CreateReply carries the replica placement per allocated block.
type CreateReply struct {
	Blocks []blockMeta
}

// CommitArgs finalizes a file after all replicas were written.
type CommitArgs struct {
	Name   string
	Blocks []blockMeta
}

// CommitReply acknowledges a file commit.
type CommitReply struct{}

// LookupArgs / LookupReply: read path.
type LookupArgs struct{ Name string }

// LookupReply carries a file's metadata.
type LookupReply struct{ File fileMeta }

// ListArgs / ListReply.
type ListArgs struct{ Prefix string }

// ListReply carries the matching file names.
type ListReply struct{ Names []string }

// DeleteArgs / DeleteReply.
type DeleteArgs struct{ Name string }

// DeleteReply returns the deleted file's blocks for garbage collection.
type DeleteReply struct{ Blocks []blockMeta }

// WriteBlockArgs / WriteBlockReply: client → datanode.
type WriteBlockArgs struct {
	ID   int64
	Data []byte
}

// WriteBlockReply acknowledges a replica write.
type WriteBlockReply struct{}

// ReadBlockArgs / ReadBlockReply: client → datanode.
type ReadBlockArgs struct{ ID int64 }

// ReadBlockReply carries one replica's bytes.
type ReadBlockReply struct{ Data []byte }

// DeleteBlocksArgs / DeleteBlocksReply: namenode/client → datanode.
type DeleteBlocksArgs struct{ IDs []int64 }

// DeleteBlocksReply acknowledges replica deletion.
type DeleteBlocksReply struct{}

// NameNode holds all file metadata and allocates block placements
// round-robin across registered datanodes.
type NameNode struct {
	// Replication is the replica count per block (default 2, capped at
	// the number of registered datanodes at allocation time).
	Replication int

	lis  net.Listener
	addr string

	mu      sync.Mutex
	nodes   []string // datanode addresses in registration order
	files   map[string]fileMeta
	nextBlk int64
	rrNext  int
}

// NewNameNode starts a namenode listening on addr (":0" picks a port).
func NewNameNode(addr string, replication int) (*NameNode, error) {
	if replication <= 0 {
		replication = 2
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dfs: namenode listen: %w", err)
	}
	n := &NameNode{
		Replication: replication,
		lis:         lis,
		addr:        lis.Addr().String(),
		files:       make(map[string]fileMeta),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("NameNode", &nameNodeRPC{n: n}); err != nil {
		lis.Close()
		return nil, err
	}
	go acceptRPC(lis, srv)
	return n, nil
}

func acceptRPC(lis net.Listener, srv *rpc.Server) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// Addr returns the namenode's dialable address.
func (n *NameNode) Addr() string { return n.addr }

// Close stops the namenode.
func (n *NameNode) Close() error { return n.lis.Close() }

// NodeCount returns the number of registered datanodes.
func (n *NameNode) NodeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

type nameNodeRPC struct{ n *NameNode }

// RegisterNode signs a datanode on.
func (r *nameNodeRPC) RegisterNode(args *RegisterNodeArgs, reply *RegisterNodeReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes = append(n.nodes, args.Addr)
	reply.NodeID = len(n.nodes)
	return nil
}

// Create allocates block ids and replica placements.
func (r *nameNodeRPC) Create(args *CreateArgs, reply *CreateReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	if len(n.nodes) == 0 {
		return fmt.Errorf("dfs: no datanodes registered")
	}
	repl := n.Replication
	if repl > len(n.nodes) {
		repl = len(n.nodes)
	}
	blocks := make([]blockMeta, len(args.BlockSizes))
	for i, size := range args.BlockSizes {
		n.nextBlk++
		replicas := make([]string, repl)
		for j := 0; j < repl; j++ {
			replicas[j] = n.nodes[(n.rrNext+j)%len(n.nodes)]
		}
		n.rrNext = (n.rrNext + 1) % len(n.nodes)
		blocks[i] = blockMeta{ID: n.nextBlk, Size: size, Replicas: replicas}
	}
	reply.Blocks = blocks
	return nil
}

// Commit finalizes a file (overwriting any previous version's metadata;
// the client deletes the old blocks).
func (r *nameNodeRPC) Commit(args *CommitArgs, reply *CommitReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	var size int64
	for _, b := range args.Blocks {
		size += int64(b.Size)
	}
	n.files[args.Name] = fileMeta{Name: args.Name, Size: size, Blocks: args.Blocks}
	return nil
}

// Lookup returns a file's metadata.
func (r *nameNodeRPC) Lookup(args *LookupArgs, reply *LookupReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.files[args.Name]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", args.Name)
	}
	reply.File = f
	return nil
}

// List returns names under a prefix.
func (r *nameNodeRPC) List(args *ListArgs, reply *ListReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.files {
		if strings.HasPrefix(name, args.Prefix) {
			reply.Names = append(reply.Names, name)
		}
	}
	sort.Strings(reply.Names)
	return nil
}

// Delete drops a file's metadata and returns its blocks so the client can
// garbage-collect replicas.
func (r *nameNodeRPC) Delete(args *DeleteArgs, reply *DeleteReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.files[args.Name]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", args.Name)
	}
	delete(n.files, args.Name)
	reply.Blocks = f.Blocks
	return nil
}
