package dfs

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Protocol types for the replicated block store.

// blockMeta names one block and where its replicas live.
type blockMeta struct {
	ID       int64
	Size     int
	Replicas []string // datanode addresses
}

type fileMeta struct {
	Name   string
	Size   int64
	Blocks []blockMeta
}

// RegisterNodeArgs / RegisterNodeReply: datanode sign-on.
type RegisterNodeArgs struct{ Addr string }

// RegisterNodeReply returns the namenode-assigned node id.
type RegisterNodeReply struct{ NodeID int }

// HeartbeatArgs is a datanode's periodic liveness signal plus its full
// block report — the namenode's only source of truth about which replicas
// actually exist (the HDFS heartbeat + block-report design, merged).
type HeartbeatArgs struct {
	Addr   string
	Blocks []int64
}

// ReplicateCmd orders the receiving datanode to push its replica of block
// ID to the Target datanode.
type ReplicateCmd struct {
	ID     int64
	Target string
}

// HeartbeatReply piggybacks namenode→datanode commands on the heartbeat
// response, HDFS-style: blocks this node should re-replicate to a peer,
// and orphaned replicas it should delete.
type HeartbeatReply struct {
	Replicate []ReplicateCmd
	Delete    []int64
}

// ReportCorruptArgs flags one replica as checksum-corrupt. The reporting
// datanode has already quarantined its copy; the namenode drops the
// replica from its metadata so the re-replication loop restores the
// block from a healthy copy.
type ReportCorruptArgs struct {
	Addr string
	ID   int64
}

// ReportCorruptReply acknowledges a corruption report.
type ReportCorruptReply struct{}

// ReportArgs / ReportReply: the dfsadmin cluster-state view.
type ReportArgs struct{}

// NodeReport describes one datanode in a cluster report.
type NodeReport struct {
	Addr   string
	Alive  bool
	Blocks int
	AgeMS  int64 // milliseconds since the last heartbeat
}

// ReportReply is the operator's cluster snapshot: node liveness, file and
// block totals, replication health, and the namenode's counters.
type ReportReply struct {
	Nodes           []NodeReport
	Files           int
	Blocks          int
	UnderReplicated int
	Counters        map[string]int64
}

// CreateArgs asks the namenode to allocate blocks for a file of the given
// sizes; the reply carries the replica placement per block.
type CreateArgs struct {
	Name       string
	BlockSizes []int
}

// CreateReply carries the replica placement per allocated block.
type CreateReply struct {
	Blocks []blockMeta
}

// CommitArgs finalizes a file after all replicas were written. The replica
// lists may be a subset of the allocated placement: the client commits
// whichever replicas it actually managed to write (at least one per
// block), and the re-replication loop restores the target count.
type CommitArgs struct {
	Name   string
	Blocks []blockMeta
}

// CommitReply acknowledges a file commit.
type CommitReply struct{}

// LookupArgs / LookupReply: read path.
type LookupArgs struct{ Name string }

// LookupReply carries a file's metadata. Replica lists are ordered
// live-first so clients try healthy datanodes before dead ones.
type LookupReply struct{ File fileMeta }

// ListArgs / ListReply.
type ListArgs struct{ Prefix string }

// ListReply carries the matching file names.
type ListReply struct{ Names []string }

// DeleteArgs / DeleteReply.
type DeleteArgs struct{ Name string }

// DeleteReply returns the deleted file's blocks for garbage collection.
type DeleteReply struct{ Blocks []blockMeta }

// WriteBlockArgs / WriteBlockReply: client → datanode.
type WriteBlockArgs struct {
	ID   int64
	Data []byte
}

// WriteBlockReply acknowledges a replica write.
type WriteBlockReply struct{}

// ReadBlockArgs / ReadBlockReply: client → datanode.
type ReadBlockArgs struct{ ID int64 }

// ReadBlockReply carries one replica's bytes and the CRC32-C recorded at
// write time, so clients can verify end-to-end.
type ReadBlockReply struct {
	Data []byte
	Crc  uint32
}

// DeleteBlocksArgs / DeleteBlocksReply: namenode/client → datanode.
type DeleteBlocksArgs struct{ IDs []int64 }

// DeleteBlocksReply acknowledges replica deletion.
type DeleteBlocksReply struct{}

// Counter names the namenode maintains; read them with NameNode.Counters
// (or remotely via the dfsadmin Report RPC).
const (
	// CtrHeartbeats counts heartbeats processed.
	CtrHeartbeats = "dfs.heartbeats"
	// CtrRereplications counts completed re-replication copies (confirmed
	// by the target's block report).
	CtrRereplications = "dfs.rereplications"
	// CtrBlocksCorrupt counts corrupt replicas reported and quarantined.
	CtrBlocksCorrupt = "dfs.blocks.corrupt"
	// CtrNodesDead counts datanodes declared dead (cumulative; a node
	// that flaps counts once per death).
	CtrNodesDead = "dfs.nodes.dead"
	// CtrBlocksUnderReplicated is a gauge: blocks below their target
	// live-replica count as of the last replication sweep.
	CtrBlocksUnderReplicated = "dfs.blocks.underreplicated"
)

// NameNodeOptions configures a namenode's fault-tolerance machinery.
// The zero value gives the documented defaults.
type NameNodeOptions struct {
	// Replication is the target replica count per block (default 2,
	// capped at the number of live datanodes at allocation time).
	Replication int
	// HeartbeatTimeout declares a datanode dead when no heartbeat arrives
	// within it (default 3s). Dead nodes are excluded from placement and
	// their replicas scheduled for re-replication.
	HeartbeatTimeout time.Duration
	// ReplicateInterval is the period of the background sweep that scans
	// for dead nodes and under-replicated blocks (default 500ms).
	ReplicateInterval time.Duration
	// AllocGrace is how long an allocated-but-uncommitted block is
	// protected from orphan garbage collection (default 10s) — it covers
	// the window between Create and Commit during a Put.
	AllocGrace time.Duration
	// Events, when non-nil, receives liveness and replication events.
	Events obs.Sink
}

func (o NameNodeOptions) withDefaults() NameNodeOptions {
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * time.Second
	}
	if o.ReplicateInterval <= 0 {
		o.ReplicateInterval = 500 * time.Millisecond
	}
	if o.AllocGrace <= 0 {
		o.AllocGrace = 10 * time.Second
	}
	if o.Events == nil {
		o.Events = obs.Discard
	}
	return o
}

// nodeState is the namenode's view of one datanode.
type nodeState struct {
	addr     string
	id       int
	lastSeen time.Time
	alive    bool
	blocks   map[int64]bool // last block report
	cmds     []ReplicateCmd // re-replication orders, delivered on heartbeat
}

// blockLoc locates a committed block inside the file metadata.
type blockLoc struct {
	file string
	idx  int
}

// pendingRepl tracks one in-flight re-replication order.
type pendingRepl struct {
	source string
	target string
	issued time.Time
}

// NameNode holds all file metadata, tracks datanode liveness through
// heartbeats, allocates block placements round-robin across live
// datanodes, and runs the background re-replication sweep.
type NameNode struct {
	opts NameNodeOptions

	lis  net.Listener
	addr string

	mu      sync.Mutex
	order   []string // datanode addresses in registration order
	nodes   map[string]*nodeState
	files   map[string]*fileMeta
	blocks  map[int64]blockLoc
	alloc   map[int64]time.Time // created but not yet committed
	pending map[int64]pendingRepl
	nextBlk int64
	rrNext  int
	spans   []obs.Span

	ctrHeartbeats     int64
	ctrRereplications int64
	ctrCorrupt        int64
	ctrDead           int64
	gaugeUnder        int64

	quit chan struct{}
	done chan struct{}
}

// NewNameNode starts a namenode listening on addr (":0" picks a port) with
// default fault-tolerance options.
func NewNameNode(addr string, replication int) (*NameNode, error) {
	return NewNameNodeOpts(addr, NameNodeOptions{Replication: replication})
}

// NewNameNodeOpts starts a namenode with explicit options.
func NewNameNodeOpts(addr string, opts NameNodeOptions) (*NameNode, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dfs: namenode listen: %w", err)
	}
	n := &NameNode{
		opts:    opts.withDefaults(),
		lis:     lis,
		addr:    lis.Addr().String(),
		nodes:   make(map[string]*nodeState),
		files:   make(map[string]*fileMeta),
		blocks:  make(map[int64]blockLoc),
		alloc:   make(map[int64]time.Time),
		pending: make(map[int64]pendingRepl),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("NameNode", &nameNodeRPC{n: n}); err != nil {
		lis.Close()
		return nil, err
	}
	go acceptRPC(lis, srv)
	go n.sweepLoop()
	return n, nil
}

func acceptRPC(lis net.Listener, srv *rpc.Server) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// Addr returns the namenode's dialable address.
func (n *NameNode) Addr() string { return n.addr }

// Close stops the namenode and its replication sweep.
func (n *NameNode) Close() error {
	select {
	case <-n.quit:
		return nil
	default:
	}
	close(n.quit)
	err := n.lis.Close()
	<-n.done
	return err
}

// NodeCount returns the number of registered datanodes, dead or alive.
func (n *NameNode) NodeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// LiveNodeCount returns the number of datanodes currently considered live.
func (n *NameNode) LiveNodeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	live := 0
	for _, s := range n.nodes {
		if s.alive {
			live++
		}
	}
	return live
}

// Counters snapshots the namenode's fault-tolerance counters (see the
// Ctr* constants).
func (n *NameNode) Counters() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return map[string]int64{
		CtrHeartbeats:            n.ctrHeartbeats,
		CtrRereplications:        n.ctrRereplications,
		CtrBlocksCorrupt:         n.ctrCorrupt,
		CtrNodesDead:             n.ctrDead,
		CtrBlocksUnderReplicated: n.gaugeUnder,
	}
}

// Spans returns one obs.Span per completed re-replication (phase
// "rereplicate", Task = block id, Bytes = block size, Wall = time from
// scheduling to the target's confirming block report).
func (n *NameNode) Spans() []obs.Span {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]obs.Span(nil), n.spans...)
}

func (n *NameNode) eventf(format string, args ...any) {
	n.opts.Events.Event("dfs", format, args...)
}

// liveAddrs returns live datanode addresses in registration order.
// Callers hold n.mu.
func (n *NameNode) liveAddrs() []string {
	live := make([]string, 0, len(n.order))
	for _, addr := range n.order {
		if n.nodes[addr].alive {
			live = append(live, addr)
		}
	}
	return live
}

// sweepLoop periodically declares silent datanodes dead and schedules
// re-replication for under-replicated blocks.
func (n *NameNode) sweepLoop() {
	defer close(n.done)
	interval := n.opts.ReplicateInterval
	if half := n.opts.HeartbeatTimeout / 2; half < interval {
		interval = half
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
			n.sweep()
		}
	}
}

// sweep is one pass of the liveness + re-replication loop.
func (n *NameNode) sweep() {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()

	// Liveness: a node silent for longer than the heartbeat timeout is
	// dead — out of placement, its replicas no longer counted.
	for _, s := range n.nodes {
		if s.alive && now.Sub(s.lastSeen) > n.opts.HeartbeatTimeout {
			s.alive = false
			s.cmds = nil
			n.ctrDead++
			n.eventf("datanode %s dead (no heartbeat for %v)", s.addr, now.Sub(s.lastSeen).Round(time.Millisecond))
		}
	}
	live := n.liveAddrs()

	// A pending order is considered stuck (and reissued) after this long.
	pendingTimeout := 3 * n.opts.HeartbeatTimeout

	var under int64
	for id, loc := range n.blocks {
		bm := &n.files[loc.file].Blocks[loc.idx]
		liveReplicas := 0
		for _, r := range bm.Replicas {
			if s, ok := n.nodes[r]; ok && s.alive {
				liveReplicas++
			}
		}
		target := n.opts.Replication
		if target > len(live) {
			target = len(live)
		}
		if target == 0 {
			continue
		}
		if liveReplicas >= target {
			delete(n.pending, id)
			// Fully replicated on live nodes: prune replicas stranded on
			// dead nodes so metadata tracks reality.
			if liveReplicas < len(bm.Replicas) {
				kept := bm.Replicas[:0]
				for _, r := range bm.Replicas {
					if s, ok := n.nodes[r]; ok && s.alive {
						kept = append(kept, r)
					}
				}
				bm.Replicas = kept
			}
			continue
		}
		under++
		if p, ok := n.pending[id]; ok {
			src := n.nodes[p.source]
			if src != nil && src.alive && now.Sub(p.issued) < pendingTimeout {
				continue // order in flight
			}
			delete(n.pending, id)
		}
		// Source: the first live replica holder that actually reported
		// the block.
		var source *nodeState
		for _, r := range bm.Replicas {
			if s, ok := n.nodes[r]; ok && s.alive && s.blocks[id] {
				source = s
				break
			}
		}
		if source == nil {
			n.eventf("block %d has no live replica — cannot re-replicate", id)
			continue
		}
		// Destination: next live node (round-robin) without a replica.
		dest := ""
		for i := 0; i < len(live); i++ {
			cand := live[(n.rrNext+i)%len(live)]
			if cand == source.addr || containsAddr(bm.Replicas, cand) {
				continue
			}
			dest = cand
			n.rrNext = (n.rrNext + i + 1) % len(live)
			break
		}
		if dest == "" {
			continue
		}
		n.pending[id] = pendingRepl{source: source.addr, target: dest, issued: now}
		source.cmds = append(source.cmds, ReplicateCmd{ID: id, Target: dest})
		n.eventf("re-replicating block %d: %s -> %s (%d/%d live replicas)",
			id, source.addr, dest, liveReplicas, target)
	}
	n.gaugeUnder = under
}

func containsAddr(addrs []string, addr string) bool {
	for _, a := range addrs {
		if a == addr {
			return true
		}
	}
	return false
}

type nameNodeRPC struct{ n *NameNode }

// register adds or revives the node record for addr. Callers hold n.mu.
func (n *NameNode) register(addr string) *nodeState {
	s, ok := n.nodes[addr]
	if !ok {
		s = &nodeState{addr: addr, id: len(n.order) + 1, blocks: make(map[int64]bool)}
		n.nodes[addr] = s
		n.order = append(n.order, addr)
	}
	if !s.alive {
		s.alive = true
		if ok {
			n.eventf("datanode %s revived", addr)
		} else {
			n.eventf("datanode %s registered (node %d)", addr, s.id)
		}
	}
	s.lastSeen = time.Now()
	return s
}

// RegisterNode signs a datanode on (or revives a restarted one).
func (r *nameNodeRPC) RegisterNode(args *RegisterNodeArgs, reply *RegisterNodeReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	reply.NodeID = n.register(args.Addr).id
	return nil
}

// Heartbeat processes a datanode's liveness signal and block report, and
// returns any queued re-replication or garbage-collection commands.
func (r *nameNodeRPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	n := r.n
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ctrHeartbeats++
	s := n.register(args.Addr)
	s.lastSeen = now

	// Reconcile the block report: confirm replicas the metadata does not
	// know about (re-replication targets, restarted disk-backed nodes),
	// and garbage-collect orphans from deleted or never-committed files.
	s.blocks = make(map[int64]bool, len(args.Blocks))
	for _, id := range args.Blocks {
		s.blocks[id] = true
		loc, ok := n.blocks[id]
		if !ok {
			if created, allocated := n.alloc[id]; allocated {
				if now.Sub(created) > n.opts.AllocGrace {
					delete(n.alloc, id)
					reply.Delete = append(reply.Delete, id)
				}
			} else {
				reply.Delete = append(reply.Delete, id)
			}
			continue
		}
		bm := &n.files[loc.file].Blocks[loc.idx]
		if !containsAddr(bm.Replicas, args.Addr) {
			bm.Replicas = append(bm.Replicas, args.Addr)
		}
		if p, ok := n.pending[id]; ok && p.target == args.Addr {
			n.ctrRereplications++
			n.spans = append(n.spans, obs.Span{
				Job: "dfs", Phase: obs.PhaseRereplicate, Task: int(id),
				Worker: s.id, Start: p.issued, Wall: now.Sub(p.issued),
				Records: 1, Bytes: int64(bm.Size),
			})
			n.eventf("block %d re-replicated to %s in %v", id, args.Addr, now.Sub(p.issued).Round(time.Millisecond))
			delete(n.pending, id)
		}
	}

	// Deliver queued re-replication orders, dropping any whose block or
	// target has gone away in the meantime.
	for _, cmd := range s.cmds {
		if _, ok := n.blocks[cmd.ID]; !ok {
			delete(n.pending, cmd.ID)
			continue
		}
		if t, ok := n.nodes[cmd.Target]; !ok || !t.alive {
			delete(n.pending, cmd.ID)
			continue
		}
		reply.Replicate = append(reply.Replicate, cmd)
	}
	s.cmds = nil
	return nil
}

// ReportCorrupt drops a quarantined replica from the metadata so the
// re-replication sweep restores the block from a healthy copy.
func (r *nameNodeRPC) ReportCorrupt(args *ReportCorruptArgs, reply *ReportCorruptReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ctrCorrupt++
	if s, ok := n.nodes[args.Addr]; ok {
		delete(s.blocks, args.ID)
	}
	if loc, ok := n.blocks[args.ID]; ok {
		bm := &n.files[loc.file].Blocks[loc.idx]
		kept := bm.Replicas[:0]
		for _, r := range bm.Replicas {
			if r != args.Addr {
				kept = append(kept, r)
			}
		}
		bm.Replicas = kept
	}
	n.eventf("corrupt replica of block %d quarantined on %s", args.ID, args.Addr)
	return nil
}

// Report assembles the dfsadmin cluster snapshot.
func (r *nameNodeRPC) Report(args *ReportArgs, reply *ReportReply) error {
	n := r.n
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, addr := range n.order {
		s := n.nodes[addr]
		reply.Nodes = append(reply.Nodes, NodeReport{
			Addr:   s.addr,
			Alive:  s.alive,
			Blocks: len(s.blocks),
			AgeMS:  now.Sub(s.lastSeen).Milliseconds(),
		})
	}
	reply.Files = len(n.files)
	reply.Blocks = len(n.blocks)
	reply.UnderReplicated = int(n.gaugeUnder)
	reply.Counters = map[string]int64{
		CtrHeartbeats:            n.ctrHeartbeats,
		CtrRereplications:        n.ctrRereplications,
		CtrBlocksCorrupt:         n.ctrCorrupt,
		CtrNodesDead:             n.ctrDead,
		CtrBlocksUnderReplicated: n.gaugeUnder,
	}
	return nil
}

// Create allocates block ids and replica placements on live datanodes.
func (r *nameNodeRPC) Create(args *CreateArgs, reply *CreateReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	live := n.liveAddrs()
	if len(live) == 0 {
		if len(n.nodes) == 0 {
			return fmt.Errorf("dfs: no datanodes registered")
		}
		return fmt.Errorf("dfs: no live datanodes (%d registered, all dead)", len(n.nodes))
	}
	repl := n.opts.Replication
	if repl > len(live) {
		repl = len(live)
	}
	now := time.Now()
	blocks := make([]blockMeta, len(args.BlockSizes))
	for i, size := range args.BlockSizes {
		n.nextBlk++
		replicas := make([]string, repl)
		for j := 0; j < repl; j++ {
			replicas[j] = live[(n.rrNext+j)%len(live)]
		}
		n.rrNext = (n.rrNext + 1) % len(live)
		blocks[i] = blockMeta{ID: n.nextBlk, Size: size, Replicas: replicas}
		n.alloc[n.nextBlk] = now
	}
	reply.Blocks = blocks
	return nil
}

// Commit finalizes a file (overwriting any previous version's metadata;
// the client deletes the old blocks).
func (r *nameNodeRPC) Commit(args *CommitArgs, reply *CommitReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.files[args.Name]; ok {
		for _, b := range old.Blocks {
			delete(n.blocks, b.ID)
			delete(n.pending, b.ID)
		}
	}
	var size int64
	for _, b := range args.Blocks {
		size += int64(b.Size)
	}
	fm := &fileMeta{Name: args.Name, Size: size, Blocks: args.Blocks}
	n.files[args.Name] = fm
	for i, b := range fm.Blocks {
		n.blocks[b.ID] = blockLoc{file: args.Name, idx: i}
		delete(n.alloc, b.ID)
	}
	return nil
}

// Lookup returns a file's metadata with each block's replicas ordered
// live-first, so clients dial healthy datanodes before dead ones.
func (r *nameNodeRPC) Lookup(args *LookupArgs, reply *LookupReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.files[args.Name]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", args.Name)
	}
	out := fileMeta{Name: f.Name, Size: f.Size, Blocks: make([]blockMeta, len(f.Blocks))}
	for i, b := range f.Blocks {
		replicas := make([]string, 0, len(b.Replicas))
		for _, addr := range b.Replicas {
			if s, ok := n.nodes[addr]; ok && s.alive {
				replicas = append(replicas, addr)
			}
		}
		for _, addr := range b.Replicas {
			if s, ok := n.nodes[addr]; !ok || !s.alive {
				replicas = append(replicas, addr)
			}
		}
		out.Blocks[i] = blockMeta{ID: b.ID, Size: b.Size, Replicas: replicas}
	}
	reply.File = out
	return nil
}

// List returns names under a prefix.
func (r *nameNodeRPC) List(args *ListArgs, reply *ListReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.files {
		if strings.HasPrefix(name, args.Prefix) {
			reply.Names = append(reply.Names, name)
		}
	}
	sort.Strings(reply.Names)
	return nil
}

// Delete drops a file's metadata and returns its blocks so the client can
// garbage-collect replicas.
func (r *nameNodeRPC) Delete(args *DeleteArgs, reply *DeleteReply) error {
	n := r.n
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.files[args.Name]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", args.Name)
	}
	delete(n.files, args.Name)
	for _, b := range f.Blocks {
		delete(n.blocks, b.ID)
		delete(n.pending, b.ID)
	}
	reply.Blocks = f.Blocks
	return nil
}
