package dfs

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"
)

// Client implements FileSystem against a NameNode/DataNode cluster. It is
// safe for concurrent use; datanode connections are cached and re-dialed
// on failure.
type Client struct {
	// BlockSize is the split size for Put (default 1 MiB; tests shrink it
	// to force multi-block files).
	BlockSize int
	// ReadRetries is how many times Get re-Lookups a file and retries when
	// a block is unreadable on every known replica (default 2) — it rides
	// out the window where re-replication is restoring a copy.
	ReadRetries int
	// ReadRetryDelay is the pause between those retries (default 100ms).
	ReadRetryDelay time.Duration

	nameAddr string

	mu    sync.Mutex
	name  *rpc.Client
	nodes map[string]*rpc.Client
}

// NewClient connects to the namenode at addr.
func NewClient(addr string) (*Client, error) {
	name, err := dialRPC(addr)
	if err != nil {
		return nil, fmt.Errorf("dfs: dial namenode: %w", err)
	}
	return &Client{
		BlockSize:      1 << 20,
		ReadRetries:    2,
		ReadRetryDelay: 100 * time.Millisecond,
		nameAddr:       addr,
		name:           name,
		nodes:          make(map[string]*rpc.Client),
	}, nil
}

// Close releases all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.Close()
	}
	c.nodes = map[string]*rpc.Client{}
	return c.name.Close()
}

func (c *Client) node(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[addr]; ok {
		return n, nil
	}
	n, err := dialRPC(addr)
	if err != nil {
		return nil, err
	}
	c.nodes[addr] = n
	return n, nil
}

func (c *Client) dropNode(addr string) {
	c.mu.Lock()
	if n, ok := c.nodes[addr]; ok {
		n.Close()
		delete(c.nodes, addr)
	}
	c.mu.Unlock()
}

func (c *Client) callName(method string, args, reply interface{}) error {
	c.mu.Lock()
	name := c.name
	c.mu.Unlock()
	return name.Call(method, args, reply)
}

// Put implements FileSystem: split into blocks, ask the namenode for
// placements, write the replicas, then commit. A replica write that fails
// is tolerated as long as at least one replica of each block lands — the
// file commits with the replicas that succeeded and the namenode's
// re-replication loop restores the target count. A previous version's
// blocks are garbage-collected after commit.
func (c *Client) Put(name string, data []byte) error {
	var oldBlocks []blockMeta
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err == nil {
		oldBlocks = lookup.File.Blocks
	}
	bs := c.BlockSize
	if bs <= 0 {
		bs = 1 << 20
	}
	var sizes []int
	for off := 0; ; off += bs {
		remaining := len(data) - off
		if remaining <= 0 {
			if len(sizes) == 0 {
				sizes = []int{0} // empty file still gets one block
			}
			break
		}
		if remaining > bs {
			remaining = bs
		}
		sizes = append(sizes, remaining)
	}
	var created CreateReply
	if err := c.callName("NameNode.Create", &CreateArgs{Name: name, BlockSizes: sizes}, &created); err != nil {
		return err
	}
	off := 0
	commit := make([]blockMeta, len(created.Blocks))
	for i, blk := range created.Blocks {
		chunk := data[off : off+blk.Size]
		off += blk.Size
		var written []string
		var lastErr error
		for _, replica := range blk.Replicas {
			n, err := c.node(replica)
			if err != nil {
				lastErr = err
				continue
			}
			var rep WriteBlockReply
			if err := n.Call("DataNode.WriteBlock", &WriteBlockArgs{ID: blk.ID, Data: chunk}, &rep); err != nil {
				c.dropNode(replica)
				lastErr = err
				continue
			}
			written = append(written, replica)
		}
		if len(written) == 0 {
			return fmt.Errorf("dfs: write block %d: no replica written (%d targets): %w",
				blk.ID, len(blk.Replicas), lastErr)
		}
		commit[i] = blockMeta{ID: blk.ID, Size: blk.Size, Replicas: written}
	}
	var committed CommitReply
	if err := c.callName("NameNode.Commit", &CommitArgs{Name: name, Blocks: commit}, &committed); err != nil {
		return err
	}
	c.gcBlocks(oldBlocks)
	return nil
}

// Get implements FileSystem: read each block from the first replica that
// serves it with a valid checksum. If a block is unreadable on every
// known replica (e.g. its last holder just died), the whole read is
// retried after a fresh Lookup up to ReadRetries times, riding out
// re-replication restoring a copy elsewhere.
func (c *Client) Get(name string) ([]byte, error) {
	retries := c.ReadRetries
	if retries < 0 {
		retries = 0
	}
	delay := c.ReadRetryDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
		}
		var lookup LookupReply
		if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err != nil {
			return nil, err
		}
		data := make([]byte, 0, lookup.File.Size)
		ok := true
		for _, blk := range lookup.File.Blocks {
			chunk, err := c.readBlock(blk)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			data = append(data, chunk...)
		}
		if ok {
			return data, nil
		}
	}
	return nil, lastErr
}

func (c *Client) readBlock(blk blockMeta) ([]byte, error) {
	var lastErr error
	for _, replica := range blk.Replicas {
		n, err := c.node(replica)
		if err != nil {
			lastErr = err
			continue
		}
		var rep ReadBlockReply
		if err := n.Call("DataNode.ReadBlock", &ReadBlockArgs{ID: blk.ID}, &rep); err != nil {
			c.dropNode(replica)
			lastErr = err
			continue
		}
		// End-to-end verification: the datanode already checked the
		// stored checksum, this guards the wire.
		if BlockChecksum(rep.Data) != rep.Crc {
			lastErr = fmt.Errorf("dfs: block %d from %s corrupted in transit", blk.ID, replica)
			continue
		}
		return rep.Data, nil
	}
	return nil, fmt.Errorf("dfs: block %d unreadable on all %d replicas: %w",
		blk.ID, len(blk.Replicas), lastErr)
}

// BlockLocation describes one block of a file and its current replicas,
// for operator tooling and fault-injection tests.
type BlockLocation struct {
	ID       int64
	Size     int
	Replicas []string
}

// BlockLocations returns the block layout of a file (replicas ordered
// live-first, as in Lookup).
func (c *Client) BlockLocations(name string) ([]BlockLocation, error) {
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err != nil {
		return nil, err
	}
	out := make([]BlockLocation, len(lookup.File.Blocks))
	for i, b := range lookup.File.Blocks {
		out[i] = BlockLocation{ID: b.ID, Size: b.Size, Replicas: append([]string(nil), b.Replicas...)}
	}
	return out, nil
}

// Report fetches the namenode's cluster snapshot (node liveness, block
// totals, replication health, counters) — the dfsadmin view.
func (c *Client) Report() (ReportReply, error) {
	var reply ReportReply
	err := c.callName("NameNode.Report", &ReportArgs{}, &reply)
	return reply, err
}

// List implements FileSystem.
func (c *Client) List(prefix string) ([]string, error) {
	var reply ListReply
	if err := c.callName("NameNode.List", &ListArgs{Prefix: prefix}, &reply); err != nil {
		return nil, err
	}
	return reply.Names, nil
}

// Delete implements FileSystem.
func (c *Client) Delete(name string) error {
	var reply DeleteReply
	if err := c.callName("NameNode.Delete", &DeleteArgs{Name: name}, &reply); err != nil {
		return err
	}
	c.gcBlocks(reply.Blocks)
	return nil
}

// Stat implements FileSystem.
func (c *Client) Stat(name string) (FileInfo, error) {
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Name:   lookup.File.Name,
		Size:   lookup.File.Size,
		Blocks: len(lookup.File.Blocks),
	}, nil
}

// gcBlocks best-effort deletes replicas of obsolete blocks.
func (c *Client) gcBlocks(blocks []blockMeta) {
	byNode := make(map[string][]int64)
	for _, b := range blocks {
		for _, r := range b.Replicas {
			byNode[r] = append(byNode[r], b.ID)
		}
	}
	for addr, ids := range byNode {
		n, err := c.node(addr)
		if err != nil {
			continue
		}
		var rep DeleteBlocksReply
		n.Call("DataNode.DeleteBlocks", &DeleteBlocksArgs{IDs: ids}, &rep)
	}
}

var _ FileSystem = (*Client)(nil)
var _ FileSystem = (*MemFS)(nil)
