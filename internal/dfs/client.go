package dfs

import (
	"fmt"
	"net/rpc"
	"sync"
)

// Client implements FileSystem against a NameNode/DataNode cluster. It is
// safe for concurrent use; datanode connections are cached and re-dialed
// on failure.
type Client struct {
	// BlockSize is the split size for Put (default 1 MiB; tests shrink it
	// to force multi-block files).
	BlockSize int

	nameAddr string

	mu    sync.Mutex
	name  *rpc.Client
	nodes map[string]*rpc.Client
}

// NewClient connects to the namenode at addr.
func NewClient(addr string) (*Client, error) {
	name, err := dialRPC(addr)
	if err != nil {
		return nil, fmt.Errorf("dfs: dial namenode: %w", err)
	}
	return &Client{
		BlockSize: 1 << 20,
		nameAddr:  addr,
		name:      name,
		nodes:     make(map[string]*rpc.Client),
	}, nil
}

// Close releases all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.Close()
	}
	c.nodes = map[string]*rpc.Client{}
	return c.name.Close()
}

func (c *Client) node(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[addr]; ok {
		return n, nil
	}
	n, err := dialRPC(addr)
	if err != nil {
		return nil, err
	}
	c.nodes[addr] = n
	return n, nil
}

func (c *Client) dropNode(addr string) {
	c.mu.Lock()
	if n, ok := c.nodes[addr]; ok {
		n.Close()
		delete(c.nodes, addr)
	}
	c.mu.Unlock()
}

func (c *Client) callName(method string, args, reply interface{}) error {
	c.mu.Lock()
	name := c.name
	c.mu.Unlock()
	return name.Call(method, args, reply)
}

// Put implements FileSystem: split into blocks, ask the namenode for
// placements, write every replica, then commit. A previous version's
// blocks are garbage-collected after commit.
func (c *Client) Put(name string, data []byte) error {
	var oldBlocks []blockMeta
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err == nil {
		oldBlocks = lookup.File.Blocks
	}
	bs := c.BlockSize
	if bs <= 0 {
		bs = 1 << 20
	}
	var sizes []int
	for off := 0; ; off += bs {
		remaining := len(data) - off
		if remaining <= 0 {
			if len(sizes) == 0 {
				sizes = []int{0} // empty file still gets one block
			}
			break
		}
		if remaining > bs {
			remaining = bs
		}
		sizes = append(sizes, remaining)
	}
	var created CreateReply
	if err := c.callName("NameNode.Create", &CreateArgs{Name: name, BlockSizes: sizes}, &created); err != nil {
		return err
	}
	off := 0
	for _, blk := range created.Blocks {
		chunk := data[off : off+blk.Size]
		off += blk.Size
		for _, replica := range blk.Replicas {
			n, err := c.node(replica)
			if err != nil {
				return fmt.Errorf("dfs: write block %d to %s: %w", blk.ID, replica, err)
			}
			var rep WriteBlockReply
			if err := n.Call("DataNode.WriteBlock", &WriteBlockArgs{ID: blk.ID, Data: chunk}, &rep); err != nil {
				c.dropNode(replica)
				return fmt.Errorf("dfs: write block %d to %s: %w", blk.ID, replica, err)
			}
		}
	}
	var committed CommitReply
	if err := c.callName("NameNode.Commit", &CommitArgs{Name: name, Blocks: created.Blocks}, &committed); err != nil {
		return err
	}
	c.gcBlocks(oldBlocks)
	return nil
}

// Get implements FileSystem: read each block from the first live replica.
func (c *Client) Get(name string) ([]byte, error) {
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err != nil {
		return nil, err
	}
	data := make([]byte, 0, lookup.File.Size)
	for _, blk := range lookup.File.Blocks {
		chunk, err := c.readBlock(blk)
		if err != nil {
			return nil, err
		}
		data = append(data, chunk...)
	}
	return data, nil
}

func (c *Client) readBlock(blk blockMeta) ([]byte, error) {
	var lastErr error
	for _, replica := range blk.Replicas {
		n, err := c.node(replica)
		if err != nil {
			lastErr = err
			continue
		}
		var rep ReadBlockReply
		if err := n.Call("DataNode.ReadBlock", &ReadBlockArgs{ID: blk.ID}, &rep); err != nil {
			c.dropNode(replica)
			lastErr = err
			continue
		}
		return rep.Data, nil
	}
	return nil, fmt.Errorf("dfs: block %d unreadable on all %d replicas: %w",
		blk.ID, len(blk.Replicas), lastErr)
}

// List implements FileSystem.
func (c *Client) List(prefix string) ([]string, error) {
	var reply ListReply
	if err := c.callName("NameNode.List", &ListArgs{Prefix: prefix}, &reply); err != nil {
		return nil, err
	}
	return reply.Names, nil
}

// Delete implements FileSystem.
func (c *Client) Delete(name string) error {
	var reply DeleteReply
	if err := c.callName("NameNode.Delete", &DeleteArgs{Name: name}, &reply); err != nil {
		return err
	}
	c.gcBlocks(reply.Blocks)
	return nil
}

// Stat implements FileSystem.
func (c *Client) Stat(name string) (FileInfo, error) {
	var lookup LookupReply
	if err := c.callName("NameNode.Lookup", &LookupArgs{Name: name}, &lookup); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Name:   lookup.File.Name,
		Size:   lookup.File.Size,
		Blocks: len(lookup.File.Blocks),
	}, nil
}

// gcBlocks best-effort deletes replicas of obsolete blocks.
func (c *Client) gcBlocks(blocks []blockMeta) {
	byNode := make(map[string][]int64)
	for _, b := range blocks {
		for _, r := range b.Replicas {
			byNode[r] = append(byNode[r], b.ID)
		}
	}
	for addr, ids := range byNode {
		n, err := c.node(addr)
		if err != nil {
			continue
		}
		var rep DeleteBlocksReply
		n.Call("DataNode.DeleteBlocks", &DeleteBlocksArgs{IDs: ids}, &rep)
	}
}

var _ FileSystem = (*Client)(nil)
var _ FileSystem = (*MemFS)(nil)
