package dfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
)

// startFaultDFS boots a cluster with aggressive fault-tolerance timings so
// liveness detection and re-replication converge in tens of milliseconds.
func startFaultDFS(t *testing.T, nodes, replication int) (*NameNode, []*DataNode, *Client) {
	t.Helper()
	nn, err := NewNameNodeOpts("127.0.0.1:0", NameNodeOptions{
		Replication:       replication,
		HeartbeatTimeout:  150 * time.Millisecond,
		ReplicateInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nn.Close() })
	var dns []*DataNode
	for i := 0; i < nodes; i++ {
		dn, err := StartDataNodeOpts(nn.Addr(), "127.0.0.1:0", DataNodeOptions{
			HeartbeatInterval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		dns = append(dns, dn)
		t.Cleanup(func() { dn.Close() })
	}
	c, err := NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return nn, dns, c
}

// waitFor polls cond until it returns nil or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	var err error
	for time.Now().Before(deadline) {
		if err = cond(); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: %v", what, err)
}

// byAddr maps datanode addresses back to their handles.
func byAddr(dns []*DataNode) map[string]*DataNode {
	m := make(map[string]*DataNode, len(dns))
	for _, dn := range dns {
		m[dn.Addr()] = dn
	}
	return m
}

func TestHeartbeatLivenessExcludesDeadFromPlacement(t *testing.T) {
	nn, dns, c := startFaultDFS(t, 3, 2)
	waitFor(t, 2*time.Second, "all nodes live", func() error {
		if n := nn.LiveNodeCount(); n != 3 {
			return fmt.Errorf("live=%d", n)
		}
		return nil
	})
	dead := dns[0].Addr()
	dns[0].Close()
	waitFor(t, 2*time.Second, "death detected", func() error {
		if n := nn.LiveNodeCount(); n != 2 {
			return fmt.Errorf("live=%d", n)
		}
		return nil
	})
	if nn.Counters()[CtrNodesDead] == 0 {
		t.Fatal("dfs.nodes.dead counter did not advance")
	}
	// New files must be placed only on the two survivors.
	c.BlockSize = 32
	if err := c.Put("fresh", bytes.Repeat([]byte("y"), 200)); err != nil {
		t.Fatal(err)
	}
	locs, err := c.BlockLocations("fresh")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range locs {
		if len(l.Replicas) != 2 {
			t.Fatalf("block %d placed on %d replicas, want 2", l.ID, len(l.Replicas))
		}
		for _, r := range l.Replicas {
			if r == dead {
				t.Fatalf("block %d placed on dead node %s", l.ID, dead)
			}
		}
	}
}

func TestReReplicationConvergence(t *testing.T) {
	nn, dns, c := startFaultDFS(t, 3, 2)
	c.BlockSize = 64
	data := bytes.Repeat([]byte("durable!"), 100) // 800 bytes = 13 blocks
	if err := c.Put("precious", data); err != nil {
		t.Fatal(err)
	}
	dead := dns[0].Addr()
	dns[0].Close()

	// Every block must regain 2 replicas on the survivors.
	waitFor(t, 5*time.Second, "re-replication convergence", func() error {
		locs, err := c.BlockLocations("precious")
		if err != nil {
			return err
		}
		for _, l := range locs {
			live := 0
			for _, r := range l.Replicas {
				if r != dead {
					live++
				}
			}
			if live < 2 {
				return fmt.Errorf("block %d has %d live replicas", l.ID, live)
			}
		}
		return nil
	})
	ctrs := nn.Counters()
	if ctrs[CtrRereplications] == 0 {
		t.Fatal("dfs.rereplications did not advance")
	}
	if spans := nn.Spans(); len(spans) == 0 {
		t.Fatal("no rereplicate spans recorded")
	} else if spans[0].Phase != "rereplicate" {
		t.Fatalf("span phase = %q", spans[0].Phase)
	}
	waitFor(t, 2*time.Second, "underreplicated gauge back to 0", func() error {
		if g := nn.Counters()[CtrBlocksUnderReplicated]; g != 0 {
			return fmt.Errorf("gauge=%d", g)
		}
		return nil
	})

	// The real proof: kill a second original node. Data survives only if
	// re-replication actually copied blocks (with the original placement
	// some block would now have zero live replicas).
	dns[1].Close()
	waitFor(t, 2*time.Second, "second death detected", func() error {
		if n := nn.LiveNodeCount(); n != 1 {
			return fmt.Errorf("live=%d", n)
		}
		return nil
	})
	got, err := c.Get("precious")
	if err != nil {
		t.Fatalf("Get after two node deaths: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after two node deaths")
	}
}

func TestChecksumCorruptionFailoverAndHeal(t *testing.T) {
	nn, dns, c := startFaultDFS(t, 3, 2)
	c.BlockSize = 128
	data := bytes.Repeat([]byte("checksum"), 64) // 512 bytes = 4 blocks
	if err := c.Put("verified", data); err != nil {
		t.Fatal(err)
	}
	locs, err := c.BlockLocations("verified")
	if err != nil {
		t.Fatal(err)
	}
	nodes := byAddr(dns)
	// Corrupt the first replica of the first block — the copy the client
	// will try first.
	victim := nodes[locs[0].Replicas[0]]
	if err := victim.Corrupt(locs[0].ID, 12345); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("verified")
	if err != nil {
		t.Fatalf("Get with one corrupt replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupt data served to client")
	}
	if nn.Counters()[CtrBlocksCorrupt] == 0 {
		t.Fatal("dfs.blocks.corrupt did not advance")
	}
	// The corrupt replica was quarantined and the block re-replicated.
	waitFor(t, 5*time.Second, "corrupt block healed", func() error {
		locs, err := c.BlockLocations("verified")
		if err != nil {
			return err
		}
		if len(locs[0].Replicas) < 2 {
			return fmt.Errorf("block %d has %d replicas", locs[0].ID, len(locs[0].Replicas))
		}
		if nn.Counters()[CtrRereplications] == 0 {
			return fmt.Errorf("no re-replication yet")
		}
		return nil
	})
}

func TestDataNodeDiesDuringOpenRead(t *testing.T) {
	_, dns, c := startFaultDFS(t, 3, 2)
	c.BlockSize = 64
	data := bytes.Repeat([]byte("midread!"), 64)
	if err := c.Put("midread", data); err != nil {
		t.Fatal(err)
	}
	locs, err := c.BlockLocations("midread")
	if err != nil {
		t.Fatal(err)
	}
	nodes := byAddr(dns)
	// The node serving the first block kills itself as it starts to serve
	// the request — a crash with the connection open.
	victim := nodes[locs[0].Replicas[0]]
	trig := chaos.OnNth(1, func() { victim.Close() })
	victim.SetHooks(BlockHooks{BeforeRead: func(id int64) error { trig(); return nil }})
	got, err := c.Get("midread")
	if err != nil {
		t.Fatalf("Get with node dying mid-read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after mid-read crash failover")
	}
}

func TestPutToleratesReplicaWriteFailure(t *testing.T) {
	nn, dns, c := startFaultDFS(t, 2, 2)
	c.BlockSize = 64
	// One datanode refuses all writes.
	faults := &chaos.Faults{DropEvery: 1}
	dns[0].SetHooks(BlockHooks{BeforeWrite: faults.Hook()})
	data := bytes.Repeat([]byte("partial!"), 32)
	if err := c.Put("partial", data); err != nil {
		t.Fatalf("Put with one failing replica: %v", err)
	}
	got, err := c.Get("partial")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
	locs, err := c.BlockLocations("partial")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range locs {
		if len(l.Replicas) != 1 || l.Replicas[0] != dns[1].Addr() {
			t.Fatalf("block %d committed replicas %v, want only %s", l.ID, l.Replicas, dns[1].Addr())
		}
	}
	if faults.Calls() == 0 {
		t.Fatal("write fault hook never fired")
	}
	// Heal: clear the hook and wait for re-replication to restore R=2.
	dns[0].SetHooks(BlockHooks{})
	waitFor(t, 5*time.Second, "write-failure heal", func() error {
		locs, err := c.BlockLocations("partial")
		if err != nil {
			return err
		}
		for _, l := range locs {
			if len(l.Replicas) < 2 {
				return fmt.Errorf("block %d has %d replicas", l.ID, len(l.Replicas))
			}
		}
		return nil
	})
	if nn.Counters()[CtrRereplications] == 0 {
		t.Fatal("dfs.rereplications did not advance during heal")
	}
}
