package evalmetrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdenticalPartitionsScoreOne(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2, 2}
	for name, fn := range map[string]func([]int, []int) (float64, error){
		"ARI": ARI, "NMI": NMI, "Rand": RandIndex, "FM": FowlkesMallows, "purity": Purity,
	} {
		got, err := fn(labels, labels)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Fatalf("%s(x,x) = %v, want 1", name, got)
		}
	}
}

// Property: all metrics are invariant to relabeling (permuting cluster
// ids) of the prediction.
func TestMetricsPermutationInvariant(t *testing.T) {
	perm := map[int]int{0: 2, 1: 0, 2: 1, 3: 3}
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		truth := make([]int, len(raw))
		pred := make([]int, len(raw))
		renamed := make([]int, len(raw))
		for i, r := range raw {
			truth[i] = int(r) % 3
			pred[i] = int(r>>2) % 4
			renamed[i] = perm[pred[i]]
		}
		for _, fn := range []func([]int, []int) (float64, error){ARI, NMI, RandIndex, FowlkesMallows, Purity} {
			a, err1 := fn(truth, pred)
			b, err2 := fn(truth, renamed)
			if err1 != nil || err2 != nil || math.Abs(a-b) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Worked example: truth [0 0 0 1 1 1], pred [0 0 1 1 2 2].
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 2, 2}
	// Contingency: rows {3,3}, cols {2,2,2}; cells: (0,0)=2 (0,1)=1 (1,1)=1 (1,2)=2.
	// sumCells=C(2,2)+C(2,2)=2; sumRows=2*C(3,2)=6; sumCols=3*C(2,2)=3; total=C(6,2)=15.
	// expected=6*3/15=1.2; max=(6+3)/2=4.5; ARI=(2-1.2)/(4.5-1.2)=0.242424...
	got, err := ARI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 - 1.2) / (4.5 - 1.2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ARI = %v, want %v", got, want)
	}
}

func TestARIRandomIsNearZero(t *testing.T) {
	// A balanced truth against a hash-scrambled prediction decorrelates
	// pairs.
	n := 4000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = i % 4
		h := uint64(i) * 0x9E3779B97F4A7C15
		h ^= h >> 29
		pred[i] = int(h % 4)
	}
	got, err := ARI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Fatalf("ARI of unrelated partitions = %v, want ~0", got)
	}
}

func TestNMIKnownValues(t *testing.T) {
	// Independent partitions: NMI ~ 0.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 0, 1}
	got, err := NMI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Fatalf("NMI of independent = %v", got)
	}
	// One cluster vs many: zero entropy on one side.
	one := []int{0, 0, 0, 0}
	if got, _ := NMI(one, []int{0, 1, 2, 3}); got != 0 {
		t.Fatalf("NMI with zero-entropy side = %v", got)
	}
	if got, _ := NMI(one, one); got != 1 {
		t.Fatalf("NMI of two trivial equal partitions = %v", got)
	}
}

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 2}
	pred := []int{0, 0, 1, 1, 1, 1}
	// Cluster 0: {0,0} majority 2. Cluster 1: {0,1,1,2} majority 2. Purity 4/6.
	got, err := Purity(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("purity = %v", got)
	}
}

func TestNoiseLabelsAreSingletons(t *testing.T) {
	// Two predictions identical except noise markers: the one marking a
	// mislabeled point as noise scores at least as well on purity.
	truth := []int{0, 0, 0, 1, 1, 1}
	wrong := []int{0, 0, 1, 1, 1, 1}
	noise := []int{0, 0, -1, 1, 1, 1}
	pw, err := Purity(truth, wrong)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := Purity(truth, noise)
	if err != nil {
		t.Fatal(err)
	}
	if pn < pw {
		t.Fatalf("noise singleton purity %v < %v", pn, pw)
	}
	// Distinct noise points never land in the same synthetic cluster.
	allNoise := []int{-1, -1, -1, -1, -1, -1}
	if got, _ := ARI(truth, allNoise); got >= 0.2 {
		t.Fatalf("all-noise ARI = %v, want low", got)
	}
}

func TestMetricErrors(t *testing.T) {
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := NMI(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := RandIndex([]int{0}, []int{0}); err == nil {
		t.Fatal("want error for single point")
	}
}

func TestTau1(t *testing.T) {
	exact := []float64{1, 2, 3, 4}
	approx := []float64{1, 2, 0, 4}
	got, err := Tau1(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("tau1 = %v", got)
	}
	if _, err := Tau1(exact, approx[:2]); err == nil {
		t.Fatal("want length error")
	}
	if _, err := Tau1(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestTau2(t *testing.T) {
	exact := []float64{2, 2, 2, 2}
	approx := []float64{2, 2, 1, 1}
	// error = 2, norm = 8, tau2 = 0.75.
	got, err := Tau2(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("tau2 = %v", got)
	}
	perfect, _ := Tau2(exact, exact)
	if perfect != 1 {
		t.Fatalf("tau2 perfect = %v", perfect)
	}
	if got, _ := Tau2([]float64{0, 0}, []float64{0, 0}); got != 1 {
		t.Fatalf("tau2 all-zero = %v", got)
	}
	if got, _ := Tau2([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("tau2 zero-norm error = %v", got)
	}
}

// Property: τ₂ is 1 iff approx equals exact, and underestimates never
// score higher than the exact answer.
func TestTau2Property(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		exact := make([]float64, len(vals))
		under := make([]float64, len(vals))
		for i, v := range vals {
			exact[i] = float64(v) + 1
			under[i] = exact[i] / 2
		}
		t1, err1 := Tau2(exact, exact)
		t2, err2 := Tau2(exact, under)
		return err1 == nil && err2 == nil && t1 == 1 && t2 < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntLabels(t *testing.T) {
	got := IntLabels([]int32{1, -1, 5})
	if len(got) != 3 || got[0] != 1 || got[1] != -1 || got[2] != 5 {
		t.Fatalf("IntLabels = %v", got)
	}
}
