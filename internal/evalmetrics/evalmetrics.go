// Package evalmetrics provides clustering-quality and approximation-quality
// metrics used by the experiment harness:
//
//   - external cluster validation against ground truth: purity, Rand index,
//     adjusted Rand index (ARI), normalized mutual information (NMI), and
//     Fowlkes–Mallows — used in the Figure 8 comparison of DP against
//     hierarchical/K-means/EM/DBSCAN;
//
//   - the paper's approximation metrics for LSH-DDP: τ₁, the fraction of
//     exactly recovered ρ̂, and τ₂ = 1 − normalized absolute ρ̂ error
//     (Section VI-C, Figure 9).
package evalmetrics

import (
	"fmt"
	"math"
)

// contingency builds the confusion matrix between two labelings plus the
// marginals. Labels may be arbitrary non-negative ints; -1 denotes noise
// (its points form singleton classes so noise is penalized, the common
// convention for DBSCAN-style outputs).
type contingency struct {
	cells    map[[2]int]int
	rowSums  map[int]int
	colSums  map[int]int
	n        int
	nextSynt int
}

func buildContingency(truth, pred []int) (*contingency, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("evalmetrics: %d truth labels vs %d predictions", len(truth), len(pred))
	}
	c := &contingency{
		cells:    make(map[[2]int]int),
		rowSums:  make(map[int]int),
		colSums:  make(map[int]int),
		n:        len(truth),
		nextSynt: 1 << 30,
	}
	for i := range truth {
		t, p := truth[i], pred[i]
		if t < 0 {
			t = c.nextSynt
			c.nextSynt++
		}
		if p < 0 {
			p = c.nextSynt
			c.nextSynt++
		}
		c.cells[[2]int{t, p}]++
		c.rowSums[t]++
		c.colSums[p]++
	}
	return c, nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// Purity is the fraction of points whose predicted cluster's majority truth
// label matches their own truth label.
func Purity(truth, pred []int) (float64, error) {
	c, err := buildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.n == 0 {
		return 0, fmt.Errorf("evalmetrics: empty labelings")
	}
	best := make(map[int]int)
	for cell, n := range c.cells {
		if n > best[cell[1]] {
			best[cell[1]] = n
		}
	}
	total := 0
	for _, b := range best {
		total += b
	}
	return float64(total) / float64(c.n), nil
}

// RandIndex is the fraction of point pairs on which the two labelings
// agree (same-same or different-different).
func RandIndex(truth, pred []int) (float64, error) {
	c, err := buildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.n < 2 {
		return 0, fmt.Errorf("evalmetrics: need at least 2 points")
	}
	var sumCells, sumRows, sumCols float64
	for _, n := range c.cells {
		sumCells += choose2(n)
	}
	for _, n := range c.rowSums {
		sumRows += choose2(n)
	}
	for _, n := range c.colSums {
		sumCols += choose2(n)
	}
	total := choose2(c.n)
	// agreements = pairs together in both + pairs apart in both.
	return (sumCells + (total - sumRows - sumCols + sumCells)) / total, nil
}

// ARI is the adjusted Rand index (Hubert & Arabie): Rand index corrected
// for chance, 1 for identical partitions, ~0 for random ones.
func ARI(truth, pred []int) (float64, error) {
	c, err := buildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.n < 2 {
		return 0, fmt.Errorf("evalmetrics: need at least 2 points")
	}
	var sumCells, sumRows, sumCols float64
	for _, n := range c.cells {
		sumCells += choose2(n)
	}
	for _, n := range c.rowSums {
		sumRows += choose2(n)
	}
	for _, n := range c.colSums {
		sumCols += choose2(n)
	}
	total := choose2(c.n)
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Both partitions are all-singletons or one cluster: define as 1
		// when identical agreement, else 0.
		if sumCells == maxIndex {
			return 1, nil
		}
		return 0, nil
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}

// NMI is normalized mutual information with the arithmetic-mean
// normalization: I(T;P) / ((H(T)+H(P))/2). Degenerate partitions with zero
// entropy on both sides return 1 when identical, else 0.
func NMI(truth, pred []int) (float64, error) {
	c, err := buildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.n == 0 {
		return 0, fmt.Errorf("evalmetrics: empty labelings")
	}
	n := float64(c.n)
	var mi float64
	for cell, cnt := range c.cells {
		pij := float64(cnt) / n
		pi := float64(c.rowSums[cell[0]]) / n
		pj := float64(c.colSums[cell[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	entropy := func(sums map[int]int) float64 {
		var h float64
		for _, cnt := range sums {
			p := float64(cnt) / n
			h -= p * math.Log(p)
		}
		return h
	}
	ht, hp := entropy(c.rowSums), entropy(c.colSums)
	if ht == 0 && hp == 0 {
		return 1, nil
	}
	if ht == 0 || hp == 0 {
		return 0, nil
	}
	return mi / ((ht + hp) / 2), nil
}

// FowlkesMallows is the geometric mean of pairwise precision and recall.
func FowlkesMallows(truth, pred []int) (float64, error) {
	c, err := buildContingency(truth, pred)
	if err != nil {
		return 0, err
	}
	if c.n < 2 {
		return 0, fmt.Errorf("evalmetrics: need at least 2 points")
	}
	var tp, sumRows, sumCols float64
	for _, n := range c.cells {
		tp += choose2(n)
	}
	for _, n := range c.rowSums {
		sumRows += choose2(n)
	}
	for _, n := range c.colSums {
		sumCols += choose2(n)
	}
	if sumRows == 0 || sumCols == 0 {
		return 0, nil
	}
	return tp / math.Sqrt(sumRows*sumCols), nil
}

// Tau1 is the paper's τ₁ = fraction of points whose approximate density
// exactly equals the true density.
func Tau1(exact, approx []float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, fmt.Errorf("evalmetrics: %d exact vs %d approx", len(exact), len(approx))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("evalmetrics: empty arrays")
	}
	hit := 0
	for i := range exact {
		if exact[i] == approx[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact)), nil
}

// Tau2 is the paper's τ₂ = 1 − (Σ|ρ̂−ρ|)/(Σρ), one minus the normalized
// absolute error; 1 when the approximation is perfect.
func Tau2(exact, approx []float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, fmt.Errorf("evalmetrics: %d exact vs %d approx", len(exact), len(approx))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("evalmetrics: empty arrays")
	}
	var errSum, norm float64
	for i := range exact {
		errSum += math.Abs(exact[i] - approx[i])
		norm += exact[i]
	}
	if norm == 0 {
		if errSum == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - errSum/norm, nil
}

// IntLabels converts int32 labels (the decision package's output) to ints.
func IntLabels(l []int32) []int {
	out := make([]int, len(l))
	for i, v := range l {
		out[i] = int(v)
	}
	return out
}
