package evalmetrics_test

import (
	"fmt"

	"repro/internal/evalmetrics"
)

// External validation of a clustering against ground truth.
func ExampleARI() {
	truth := []int{0, 0, 0, 1, 1, 1}
	perfect := []int{5, 5, 5, 9, 9, 9} // same partition, different ids
	offByOne := []int{0, 0, 1, 1, 1, 1}
	a1, _ := evalmetrics.ARI(truth, perfect)
	a2, _ := evalmetrics.ARI(truth, offByOne)
	fmt.Printf("perfect: %.3f  one mislabel: %.3f\n", a1, a2)
	// Output:
	// perfect: 1.000  one mislabel: 0.324
}

// The paper's approximation metrics for ρ̂ (Section VI-C).
func ExampleTau2() {
	exact := []float64{10, 20, 30, 40}
	approx := []float64{10, 18, 30, 38} // undercounts by 4 of 100
	t1, _ := evalmetrics.Tau1(exact, approx)
	t2, _ := evalmetrics.Tau2(exact, approx)
	fmt.Printf("tau1=%.2f tau2=%.2f\n", t1, t2)
	// Output:
	// tau1=0.50 tau2=0.96
}
