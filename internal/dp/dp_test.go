package dp

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/points"
)

// naive is an independent, maximally-simple DP implementation used as the
// oracle for the optimized one.
func naive(ds *points.Dataset, dc float64, kernel Kernel) *Result {
	n := ds.N()
	res := &Result{
		Rho:     make([]float64, n),
		Delta:   make([]float64, n),
		Upslope: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := points.Dist(ds.Points[i].Pos, ds.Points[j].Pos)
			if kernel == KernelGaussian {
				res.Rho[i] += math.Exp(-(d * d) / (dc * dc))
			} else if d < dc {
				res.Rho[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		var bestJ int32 = -1
		var maxD float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := points.Dist(ds.Points[i].Pos, ds.Points[j].Pos)
			if d > maxD {
				maxD = d
			}
			if DenserVals(res.Rho[j], res.Rho[i], int32(j), int32(i)) && d < best {
				best = d
				bestJ = int32(j)
			}
		}
		if bestJ == -1 {
			res.Delta[i] = maxD
		} else {
			res.Delta[i] = best
		}
		res.Upslope[i] = bestJ
		if res.Delta[i] > res.MaxDelta {
			res.MaxDelta = res.Delta[i]
		}
	}
	if n == 1 {
		res.Delta[0] = 0
	}
	return res
}

func randomSet(n, dim int, seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	vs := make([]points.Vector, n)
	for i := range vs {
		v := make(points.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		vs[i] = v
	}
	return points.FromVectors("rand", vs)
}

func assertMatches(t *testing.T, got, want *Result, label string) {
	t.Helper()
	for i := range want.Rho {
		if math.Abs(got.Rho[i]-want.Rho[i]) > 1e-9 {
			t.Fatalf("%s: rho[%d] = %v, want %v", label, i, got.Rho[i], want.Rho[i])
		}
		if math.Abs(got.Delta[i]-want.Delta[i]) > 1e-9 {
			t.Fatalf("%s: delta[%d] = %v, want %v", label, i, got.Delta[i], want.Delta[i])
		}
		if got.Upslope[i] != want.Upslope[i] {
			t.Fatalf("%s: upslope[%d] = %d, want %d", label, i, got.Upslope[i], want.Upslope[i])
		}
	}
}

func TestComputeMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ds := randomSet(150, 3, seed)
		dc := CutoffByPercentile(ds, 0.05, seed)
		got, err := Compute(ds, dc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, got, naive(ds, dc, KernelCutoff), "cutoff")
	}
}

func TestTriangleFilterIsExact(t *testing.T) {
	ds := randomSet(200, 4, 7)
	dc := CutoffByPercentile(ds, 0.03, 7)
	plain, err := Compute(ds, dc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Compute(ds, dc, Options{TriangleFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	assertMatches(t, filtered, plain, "triangle-filter")
}

func TestTriangleFilterSavesDistances(t *testing.T) {
	ds := randomSet(400, 2, 9)
	dc := CutoffByPercentile(ds, 0.01, 9)
	var plainCount, filtCount int64
	if _, err := Compute(ds, dc, Options{Counter: &plainCount}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(ds, dc, Options{TriangleFilter: true, Counter: &filtCount}); err != nil {
		t.Fatal(err)
	}
	if filtCount >= plainCount {
		t.Fatalf("triangle filter saved nothing: %d vs %d", filtCount, plainCount)
	}
}

func TestGaussianKernelMatchesNaive(t *testing.T) {
	ds := randomSet(120, 2, 11)
	dc := CutoffByPercentile(ds, 0.05, 11)
	got, err := Compute(ds, dc, Options{Kernel: KernelGaussian})
	if err != nil {
		t.Fatal(err)
	}
	want := naive(ds, dc, KernelGaussian)
	for i := range want.Rho {
		if math.Abs(got.Rho[i]-want.Rho[i]) > 1e-9 {
			t.Fatalf("gaussian rho[%d] = %v, want %v", i, got.Rho[i], want.Rho[i])
		}
	}
}

func TestDenserTotalOrder(t *testing.T) {
	rho := []float64{3, 1, 3, 2}
	// Equal rho: lower ID wins.
	if !Denser(rho, 0, 2) || Denser(rho, 2, 0) {
		t.Fatal("tie-break by ID broken")
	}
	if !Denser(rho, 0, 3) || Denser(rho, 1, 3) {
		t.Fatal("rho comparison broken")
	}
	// Denser defines a strict total order: exactly one of (i<j, j<i) holds
	// for i != j.
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i == j {
				continue
			}
			a, b := Denser(rho, i, j), Denser(rho, j, i)
			if a == b {
				t.Fatalf("order not strict at (%d,%d)", i, j)
			}
		}
	}
}

func TestAbsolutePeakInvariants(t *testing.T) {
	ds := randomSet(100, 2, 13)
	dc := CutoffByPercentile(ds, 0.1, 13)
	res, err := Compute(ds, dc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	peaks := 0
	var peak int32
	for i, u := range res.Upslope {
		if u == -1 {
			peaks++
			peak = int32(i)
		}
	}
	if peaks != 1 {
		t.Fatalf("%d absolute peaks, want exactly 1", peaks)
	}
	// The peak is the densest point under the total order.
	for i := range res.Rho {
		if int32(i) != peak && Denser(res.Rho, int32(i), peak) {
			t.Fatalf("point %d denser than peak %d", i, peak)
		}
	}
	// Upslope points are strictly denser; assignment chains terminate.
	for i, u := range res.Upslope {
		if u == -1 {
			continue
		}
		if !Denser(res.Rho, u, int32(i)) {
			t.Fatalf("upslope %d of %d is not denser", u, i)
		}
	}
}

// Property: on random data, δ of every non-peak point is the distance to
// its upslope point, and no denser point is closer.
func TestDeltaOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomSet(60, 2, seed)
		dc := CutoffByPercentile(ds, 0.1, seed)
		res, err := Compute(ds, dc, Options{})
		if err != nil {
			return false
		}
		for i := range res.Rho {
			u := res.Upslope[i]
			if u == -1 {
				continue
			}
			if math.Abs(points.Dist(ds.Points[i].Pos, ds.Points[u].Pos)-res.Delta[i]) > 1e-9 {
				return false
			}
			for j := range res.Rho {
				if int32(j) == int32(i) || !Denser(res.Rho, int32(j), int32(i)) {
					continue
				}
				if points.Dist(ds.Points[i].Pos, ds.Points[j].Pos) < res.Delta[i]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeEdgeCases(t *testing.T) {
	if _, err := Compute(points.FromVectors("x", []points.Vector{{1}}), 0, Options{}); err == nil {
		t.Fatal("want error for non-positive dc")
	}
	empty, err := Compute(&points.Dataset{}, 1, Options{})
	if err != nil || len(empty.Rho) != 0 {
		t.Fatalf("empty dataset: %v %v", empty, err)
	}
	one, err := Compute(points.FromVectors("one", []points.Vector{{5, 5}}), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Delta[0] != 0 || one.Upslope[0] != -1 {
		t.Fatalf("single point: delta=%v upslope=%d", one.Delta[0], one.Upslope[0])
	}
}

func TestCutoffByPercentileMatchesSortedPairs(t *testing.T) {
	ds := randomSet(80, 2, 17)
	var dists []float64
	for i := 0; i < ds.N(); i++ {
		for j := i + 1; j < ds.N(); j++ {
			dists = append(dists, points.Dist(ds.Points[i].Pos, ds.Points[j].Pos))
		}
	}
	sort.Float64s(dists)
	want := dists[int(0.02*float64(len(dists)))-1]
	if got := CutoffByPercentile(ds, 0.02, 1); got != want {
		t.Fatalf("dc = %v, want %v", got, want)
	}
}

func TestGridIndexIsExact(t *testing.T) {
	for _, dim := range []int{1, 2, 4} {
		ds := randomSet(300, dim, int64(20+dim))
		dc := CutoffByPercentile(ds, 0.03, 1)
		plain, err := Compute(ds, dc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		grid, err := Compute(ds, dc, Options{GridIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, grid, plain, "grid-index")
	}
}

func TestGridIndexSavesDistances(t *testing.T) {
	ds := randomSet(2000, 2, 23)
	dc := CutoffByPercentile(ds, 0.01, 1)
	var plainCount, gridCount int64
	if _, err := Compute(ds, dc, Options{Counter: &plainCount}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(ds, dc, Options{GridIndex: true, Counter: &gridCount}); err != nil {
		t.Fatal(err)
	}
	// The grid only accelerates the ρ pass; the δ sweep stays quadratic,
	// so the total should drop to roughly half (δ pass) plus a small
	// near-linear ρ term.
	if float64(gridCount) >= 0.55*float64(plainCount) {
		t.Fatalf("grid index saved too little: %d vs %d", gridCount, plainCount)
	}
	rhoPlain := plainCount / 2
	rhoGrid := gridCount - plainCount/2
	if rhoGrid*10 >= rhoPlain {
		t.Fatalf("grid rho pass too expensive: ~%d vs %d", rhoGrid, rhoPlain)
	}
}

func TestGridIndexHighDimFallsBack(t *testing.T) {
	ds := randomSet(100, 8, 29)
	dc := CutoffByPercentile(ds, 0.05, 1)
	plain, err := Compute(ds, dc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Compute(ds, dc, Options{GridIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	assertMatches(t, grid, plain, "grid-fallback")
}

func TestGridNegativeCoordinates(t *testing.T) {
	// Cell flooring near zero is the classic off-by-one spot.
	vs := []points.Vector{{-0.1, -0.1}, {0.1, 0.1}, {-1.5, 2.5}, {0, 0}}
	ds := points.FromVectors("neg", vs)
	plain, err := Compute(ds, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Compute(ds, 0.5, Options{GridIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	assertMatches(t, grid, plain, "grid-negative")
}
