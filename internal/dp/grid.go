package dp

import (
	"strconv"

	"repro/internal/points"
)

// Grid-accelerated ρ computation. For low-dimensional data, bucketing
// points into a uniform grid with cell side d_c restricts each point's
// candidate neighbours to the 3^dim adjacent cells, turning the O(N²)
// cutoff-kernel ρ pass into an expected near-linear one. This is the
// sequential analogue of the locality the distributed algorithms exploit
// and makes the exact references for Figures 9/12 cheap on 2-D/4-D sets.
//
// The result is exact: every pair within d_c shares or neighbours a cell.
// Above maxGridDim the 3^dim fan-out exceeds the savings and computeRho
// falls back to the quadratic pass.
const maxGridDim = 6

// grid buckets point indices by cell coordinate key.
type grid struct {
	side  float64
	dim   int
	cells map[string][]int32
}

func buildGrid(ds *points.Dataset, side float64) *grid {
	g := &grid{side: side, dim: ds.Dim(), cells: make(map[string][]int32)}
	for i, p := range ds.Points {
		key := g.key(p.Pos, nil)
		g.cells[key] = append(g.cells[key], int32(i))
	}
	return g
}

func (g *grid) key(pos points.Vector, off []int) string {
	buf := make([]byte, 0, g.dim*8)
	for j := 0; j < g.dim; j++ {
		c := int(pos[j] / g.side)
		if pos[j] < 0 {
			c--
		}
		if off != nil {
			c += off[j]
		}
		buf = strconv.AppendInt(buf, int64(c), 10)
		buf = append(buf, ':')
	}
	return string(buf)
}

// forEachNeighborCell visits the point lists of all 3^dim cells around pos.
func (g *grid) forEachNeighborCell(pos points.Vector, fn func(ids []int32)) {
	off := make([]int, g.dim)
	var walk func(d int)
	walk = func(d int) {
		if d == g.dim {
			if ids, ok := g.cells[g.key(pos, off)]; ok {
				fn(ids)
			}
			return
		}
		for _, o := range [3]int{-1, 0, 1} {
			off[d] = o
			walk(d + 1)
		}
	}
	walk(0)
}

// computeRhoGrid fills rho for the cutoff kernel using the grid index.
func computeRhoGrid(ds *points.Dataset, dc float64, opt Options, rho []float64) {
	g := buildGrid(ds, dc)
	dc2 := dc * dc
	var nd int64
	for i := range ds.Points {
		pos := ds.Points[i].Pos
		g.forEachNeighborCell(pos, func(ids []int32) {
			for _, j := range ids {
				// Count each unordered pair once (j > i) and credit both.
				if j <= int32(i) {
					continue
				}
				nd++
				if points.SqDist(pos, ds.Points[j].Pos) < dc2 {
					rho[i]++
					rho[j]++
				}
			}
		})
	}
	if opt.Counter != nil {
		*opt.Counter += nd
	}
}
