// Package dp implements the exact, sequential Density Peaks clustering
// algorithm of Rodriguez & Laio (Science, 2014), which every distributed
// algorithm in this repository approximates or parallelizes. It is the
// ground truth for the paper's accuracy metrics (τ₁, τ₂) and the quality
// comparison of Figure 8.
//
// For every point i the algorithm computes:
//
//	ρ_i — the local density: the number of points within the cutoff
//	      distance d_c (or a Gaussian-kernel weighted count);
//	δ_i — the minimum distance to any point with higher density, and the
//	      identity of that "upslope" point;
//
// and, for the single densest point (the absolute density peak),
// δ = max_j d_ij with no upslope point.
//
// Density ties are broken by point ID: point j is considered denser than
// point i iff ρ_j > ρ_i, or ρ_j == ρ_i and j < i. The cutoff-kernel ρ is an
// integer count, so ties are common; without a total order two tied points
// could both claim to be the absolute peak and results would be
// nondeterministic. Every algorithm in the repository (Basic-DDP, LSH-DDP,
// EDDPC) applies the same rule, so their exact variants agree bit-for-bit
// with this package.
package dp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/points"
)

// Kernel selects the density estimator.
type Kernel int

const (
	// KernelCutoff counts neighbours within d_c: ρ_i = Σ_j 𝟙[d_ij < d_c].
	// This is the paper's Equation (1).
	KernelCutoff Kernel = iota
	// KernelGaussian uses ρ_i = Σ_j exp(−(d_ij/d_c)²), the smooth variant
	// from the original DP paper (an extension; the reproduced paper uses
	// the cutoff kernel throughout).
	KernelGaussian
)

// Options configures Compute.
type Options struct {
	Kernel Kernel
	// TriangleFilter enables the pivot-based triangle-inequality filter for
	// the cutoff-kernel ρ pass (Section II-A's optimization (1)): with
	// r_i = d(p_i, pivot) precomputed, |r_i − r_j| ≥ d_c proves
	// d_ij ≥ d_c without evaluating the distance.
	TriangleFilter bool
	// GridIndex accelerates the cutoff-kernel ρ pass with a uniform grid
	// of cell side d_c (exact; near-linear on low-dimensional data; takes
	// precedence over TriangleFilter; ignored above 6 dimensions).
	GridIndex bool
	// Counter, when non-nil, receives the number of full distance
	// evaluations performed (the paper's computational-cost metric).
	Counter *int64
}

// Result holds the exact DP quantities, indexed by point ID.
type Result struct {
	Rho     []float64
	Delta   []float64
	Upslope []int32 // -1 for the absolute density peak
	// MaxDelta is the largest finite δ, used to place the absolute peak on
	// the decision graph.
	MaxDelta float64
}

// Denser reports whether point j dominates point i in the density total
// order used throughout the repository (ρ with ID tie-break).
func Denser(rho []float64, j, i int32) bool {
	if rho[j] != rho[i] {
		return rho[j] > rho[i]
	}
	return j < i
}

// DenserVals is Denser for already-extracted density values.
func DenserVals(rhoJ, rhoI float64, j, i int32) bool {
	if rhoJ != rhoI {
		return rhoJ > rhoI
	}
	return j < i
}

// Compute runs exact DP on ds with cutoff dc.
func Compute(ds *points.Dataset, dc float64, opt Options) (*Result, error) {
	n := ds.N()
	if n == 0 {
		return &Result{}, nil
	}
	if dc <= 0 {
		return nil, fmt.Errorf("dp: non-positive d_c %v", dc)
	}
	res := &Result{
		Rho:     make([]float64, n),
		Delta:   make([]float64, n),
		Upslope: make([]int32, n),
	}
	computeRho(ds, dc, opt, res.Rho)
	computeDelta(ds, opt, res)
	return res, nil
}

// computeRho fills rho using the configured kernel.
func computeRho(ds *points.Dataset, dc float64, opt Options, rho []float64) {
	n := ds.N()
	dc2 := dc * dc
	count := func() {
		if opt.Counter != nil {
			*opt.Counter++
		}
	}
	switch opt.Kernel {
	case KernelGaussian:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d2 := points.SqDist(ds.Points[i].Pos, ds.Points[j].Pos)
				count()
				w := math.Exp(-d2 / dc2)
				rho[i] += w
				rho[j] += w
			}
		}
	default: // KernelCutoff
		if opt.GridIndex && ds.Dim() <= maxGridDim {
			computeRhoGrid(ds, dc, opt, rho)
			return
		}
		var pivotDist []float64
		if opt.TriangleFilter {
			pivot := ds.Points[0].Pos
			pivotDist = make([]float64, n)
			for i := 0; i < n; i++ {
				pivotDist[i] = points.Dist(pivot, ds.Points[i].Pos)
				count()
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pivotDist != nil && math.Abs(pivotDist[i]-pivotDist[j]) >= dc {
					continue
				}
				d2 := points.SqDist(ds.Points[i].Pos, ds.Points[j].Pos)
				count()
				if d2 < dc2 {
					rho[i]++
					rho[j]++
				}
			}
		}
	}
}

// computeDelta fills Delta/Upslope/MaxDelta using the descending-ρ sweep
// (Section II-A's optimization (2)): after sorting points by the density
// total order, point i's upslope candidates are exactly the points ahead
// of it in the order.
func computeDelta(ds *points.Dataset, opt Options, res *Result) {
	n := ds.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return Denser(res.Rho, order[a], order[b])
	})
	count := func() {
		if opt.Counter != nil {
			*opt.Counter++
		}
	}
	for oi := 1; oi < n; oi++ {
		i := order[oi]
		best2 := math.Inf(1)
		var bestJ int32 = -1
		for oj := 0; oj < oi; oj++ {
			j := order[oj]
			d2 := points.SqDist(ds.Points[i].Pos, ds.Points[j].Pos)
			count()
			if d2 < best2 {
				best2 = d2
				bestJ = j
			}
		}
		res.Delta[i] = math.Sqrt(best2)
		res.Upslope[i] = bestJ
		if res.Delta[i] > res.MaxDelta {
			res.MaxDelta = res.Delta[i]
		}
	}
	// Absolute density peak: δ = max distance to any other point.
	peak := order[0]
	var max2 float64
	for j := 0; j < n; j++ {
		if int32(j) == peak {
			continue
		}
		d2 := points.SqDist(ds.Points[peak].Pos, ds.Points[j].Pos)
		count()
		if d2 > max2 {
			max2 = d2
		}
	}
	res.Delta[peak] = math.Sqrt(max2)
	res.Upslope[peak] = -1
	if res.Delta[peak] > res.MaxDelta {
		res.MaxDelta = res.Delta[peak]
	}
	if n == 1 {
		res.Delta[peak] = 0
	}
}

// CutoffByPercentile chooses d_c as the q-quantile of the (sampled)
// pairwise distance distribution — the rule of thumb from the DP paper of
// placing the average neighbourhood at 1%–2% of N.
func CutoffByPercentile(ds *points.Dataset, q float64, seed int64) float64 {
	return points.PercentileDistance(ds, q, 200_000, seed)
}
