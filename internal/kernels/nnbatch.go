package kernels

// NNBatch is the multi-query exact NN scan used by the serving path's
// micro-batcher: one pass over each row tile serves every query in the
// batch, so the model's coordinate block streams through the cache once per
// tile instead of once per query. Per query the rows are still visited in
// ascending order with the same arithmetic as NNRange, so each (best,
// best2) result is bit-identical to a standalone NNRange call.

// nnTile is the row-tile edge of the batched scans. 128 rows of an
// 8-dimensional float64 block are 8 KiB — resident in L1 while the whole
// query batch runs over them.
const nnTile = 128

// batchTiles drives one tiled multi-query scan: rows [lo, hi) are visited
// in nnTile-row tiles, and within each tile every query index [0, nq)
// scans the tile's rows in ascending order via scan(qi, tLo, tHi). Every
// batch kernel — NNBatch, NNBatch32, NNBatchQ8, TopKBatch, TopKBatch32 —
// runs on this one loop, so the tiling cannot drift between them; per
// query the visit order is identical to the flat [lo, hi) scan, which
// keeps each batched result bit-identical to its single-query kernel.
func batchTiles(lo, hi, nq int, scan func(qi, tLo, tHi int)) {
	for t := lo; t < hi; t += nnTile {
		tHi := minInt(t+nnTile, hi)
		for qi := 0; qi < nq; qi++ {
			scan(qi, t, tHi)
		}
	}
}

// NNBatch scans rows [lo, hi) of data (rows of length dim) for every query
// in qs (flat, len(best)*dim) and writes the nearest row index and squared
// distance into best/best2 (len = number of queries). Each query's result
// is bit-identical to NNRange(data, dim, q, lo, hi), including (-1, +Inf)
// when no row has a finite distance.
func NNBatch(data []float64, dim int, qs []float64, lo, hi int, best []int32, best2 []float64) {
	nq := len(best)
	for i := 0; i < nq; i++ {
		best[i], best2[i] = -1, inf
	}
	batchTiles(lo, hi, nq, func(qi, tLo, tHi int) {
		b, b2 := nnScanRange(data, dim, qs[qi*dim:(qi+1)*dim], tLo, tHi, int(best[qi]), best2[qi])
		best[qi], best2[qi] = int32(b), b2
	})
}
