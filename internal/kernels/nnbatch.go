package kernels

// NNBatch is the multi-query exact NN scan used by the serving path's
// micro-batcher: one pass over each row tile serves every query in the
// batch, so the model's coordinate block streams through the cache once per
// tile instead of once per query. Per query the rows are still visited in
// ascending order with the same arithmetic as NNRange, so each (best,
// best2) result is bit-identical to a standalone NNRange call.

// nnTile is the row-tile edge of the batched scans. 128 rows of an
// 8-dimensional float64 block are 8 KiB — resident in L1 while the whole
// query batch runs over them.
const nnTile = 128

// NNBatch scans rows [lo, hi) of data (rows of length dim) for every query
// in qs (flat, len(best)*dim) and writes the nearest row index and squared
// distance into best/best2 (len = number of queries). Each query's result
// is bit-identical to NNRange(data, dim, q, lo, hi), including (-1, +Inf)
// when no row has a finite distance.
func NNBatch(data []float64, dim int, qs []float64, lo, hi int, best []int32, best2 []float64) {
	nq := len(best)
	for i := 0; i < nq; i++ {
		best[i], best2[i] = -1, inf
	}
	for t := lo; t < hi; t += nnTile {
		tHi := minInt(t+nnTile, hi)
		for qi := 0; qi < nq; qi++ {
			b, b2 := int(best[qi]), best2[qi]
			if dim == 2 {
				qx, qy := qs[2*qi], qs[2*qi+1]
				for i := t; i < tHi; i++ {
					d0 := qx - data[2*i]
					d1 := qy - data[2*i+1]
					d2 := d0 * d0
					d2 += d1 * d1
					if d2 < b2 {
						b, b2 = i, d2
					}
				}
			} else {
				q := qs[qi*dim : (qi+1)*dim]
				for i := t; i < tHi; i++ {
					d2 := sqDistFlat(q, data[i*dim:(i+1)*dim], dim)
					if d2 < b2 {
						b, b2 = i, d2
					}
				}
			}
			best[qi], best2[qi] = int32(b), b2
		}
	}
}
