package kernels

import (
	"runtime"
	"sync"

	"repro/internal/points"
)

// Intra-partition parallelism for skewed reducer groups.
//
// The paper observes (Figure 12) that at small M with large π a single LSH
// partition can hold a large fraction of the data set; the engine's
// task-level parallelism then degenerates — one reducer goroutine grinds
// through O(n²) pairs while every other core idles. The Auto kernels below
// split the tile grid of such a group across a bounded worker pool:
// tile-rows are dealt round-robin (upper-triangle rows shrink toward the
// bottom, so striding balances load), each worker accumulates into private
// buffers, and the partials merge deterministically in worker order.
//
// Determinism: the merged δ-argmin is bit-identical to the serial kernel —
// each worker tracks (best², candidate row) and the merge takes the
// lexicographic minimum, which equals the serial first-wins scan. Cutoff-
// kernel ρ is a sum of small integers, exact in float64 under any addition
// order, so it is bit-identical too. Gaussian ρ partial sums may differ
// from the serial result in the last ulps (float addition is not
// associative across the worker split); results remain deterministic for a
// fixed worker count.

// Parallel configures the intra-partition parallel path. The zero value
// disables it, keeping every reducer group on the serial (bit-identical)
// kernels.
type Parallel struct {
	// Threshold is the minimum group size (rows) that triggers the
	// parallel path; <=0 disables it.
	Threshold int
	// Workers bounds the per-group worker pool; <=0 means GOMAXPROCS,
	// capped at 16.
	Workers int
}

// Enabled reports whether a group of n rows takes the parallel path.
func (p Parallel) Enabled(n int) bool { return p.Threshold > 0 && n >= p.Threshold }

func (p Parallel) workers(nTileRows int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 16 {
		w = 16
	}
	if w > nTileRows {
		w = nTileRows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RhoAccumulateAuto is RhoAccumulate with the parallel path engaged for
// groups at or above p.Threshold.
func RhoAccumulateAuto(m *points.Matrix, lo, hi int, k Kernel, rho []float64, p Parallel) int64 {
	n := hi - lo
	nTiles := (n + tile - 1) / tile
	w := 0
	if p.Enabled(n) {
		w = p.workers(nTiles)
	}
	if w <= 1 {
		return RhoAccumulate(m, lo, hi, k, rho)
	}
	data, dim := m.Data(), m.Dim()
	partials := make([][]float64, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			part := make([]float64, hi)
			partials[wi] = part
			// Tile-rows dealt round-robin; each owns its diagonal tile and
			// every tile to its right, accumulating both sides privately.
			for tr := wi; tr < nTiles; tr += w {
				ti := lo + tr*tile
				tiHi := minInt(ti+tile, hi)
				rhoDiagTile(data, dim, ti, tiHi, k, part)
				for tj := tiHi; tj < hi; tj += tile {
					rhoCrossTile(data, dim, ti, tiHi, tj, minInt(tj+tile, hi), k, part, true)
				}
			}
		}(wi)
	}
	wg.Wait()
	// Merge in worker order: exact for the cutoff kernel (integer sums),
	// deterministic for Gaussian at a fixed worker count.
	for _, part := range partials {
		for x := lo; x < hi; x++ {
			rho[x] += part[x]
		}
	}
	return int64(n) * int64(n-1) / 2
}

// DeltaArgminAuto is DeltaArgmin with the parallel path engaged for groups
// at or above p.Threshold. The merged result is bit-identical to the
// serial kernel (see the package comment).
func DeltaArgminAuto(m *points.Matrix, lo, hi int, acc *DeltaAcc, p Parallel) int64 {
	n := hi - lo
	nTiles := (n + tile - 1) / tile
	w := 0
	if p.Enabled(n) {
		w = p.workers(nTiles)
	}
	if w <= 1 {
		return DeltaArgmin(m, lo, hi, acc)
	}
	withMax := acc.Max2 != nil
	partials := make([]*DeltaAcc, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			part := NewDeltaAcc(hi, withMax)
			partials[wi] = part
			for tr := wi; tr < nTiles; tr += w {
				ti := lo + tr*tile
				tiHi := minInt(ti+tile, hi)
				deltaDiagTile(m, ti, tiHi, part)
				for tj := tiHi; tj < hi; tj += tile {
					deltaCrossTile(m, ti, tiHi, tj, minInt(tj+tile, hi), part)
				}
			}
		}(wi)
	}
	wg.Wait()
	// Per-row merge. Each pair was evaluated by exactly one worker, so the
	// partial candidate sets partition the serial candidate sequence; the
	// lexicographic (best², candidate row) minimum reproduces the serial
	// first-wins scan exactly, even against state acc carried in from
	// earlier chunks (whose candidate rows all precede this range).
	for _, part := range partials {
		for x := lo; x < hi; x++ {
			if withMax && part.Max2[x] > acc.Max2[x] {
				acc.Max2[x] = part.Max2[x]
			}
			if part.Up[x] < 0 {
				continue
			}
			if part.Best2[x] < acc.Best2[x] ||
				(part.Best2[x] == acc.Best2[x] && (acc.Up[x] < 0 || part.Up[x] < acc.Up[x])) {
				acc.Best2[x] = part.Best2[x]
				acc.Up[x] = part.Up[x]
			}
		}
	}
	return int64(n) * int64(n-1) / 2
}
