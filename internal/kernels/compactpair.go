package kernels

// Compact (float32) variants of the pairwise ρ/δ kernels. Each pair's
// squared distance is first computed over a float32 mirror of the group
// (points.Matrix32); the Bounds contract then proves, for most pairs, that
// the exact float64 distance could not change the accumulator — the pair
// is skipped — and the few pairs inside the uncertainty band are re-checked
// with the exact float64 arithmetic in the original visit order. The
// accumulator therefore evolves through exactly the same float64 state
// transitions as the plain kernels:
//
//   - cutoff ρ: bit-identical (each pair's contribution is exactly 0 or 1,
//     decided either provably from the compact distance or exactly);
//   - δ (Best2/Up/Max2): bit-identical, including the first-wins tie rule
//     (a skipped pair provably could not update; an evaluated pair uses the
//     exact distance);
//   - Gaussian ρ: within documented tolerance, NOT bit-identical — the
//     weight exp(−d²/d_c²) varies continuously, so it is computed from the
//     float64-promoted compact distance (relative error ≤ ~2⁻²⁰·dim on d²).
//     The accumulation order matches the plain kernel, so results are still
//     deterministic and engine-independent for a fixed precision setting.
//
// Pairs whose compact distance is NaN/+Inf always take the exact re-check.

import (
	"repro/internal/dp"
	"repro/internal/points"
)

// RhoAccumulate32 is the compact-scan counterpart of RhoAccumulate over
// rows [lo, hi): c must mirror m. Returns the pair count (as RhoAccumulate
// does) and the number of exact float64 re-checks.
func RhoAccumulate32(m *points.Matrix, c *points.Matrix32, lo, hi int, k Kernel, rho []float64) (pairs, rechecks int64) {
	n := hi - lo
	if n < 2 {
		return 0, 0
	}
	ctx := newRho32Ctx(m, c, k, rho)
	for ti := lo; ti < hi; ti += tile {
		tiHi := minInt(ti+tile, hi)
		ctx.diagTile(ti, tiHi)
		for tj := tiHi; tj < hi; tj += tile {
			ctx.crossTile(ti, tiHi, tj, minInt(tj+tile, hi), true)
		}
	}
	return int64(n) * int64(n-1) / 2, ctx.rechecks
}

// RhoCross32 is the compact-scan counterpart of RhoCross.
func RhoCross32(m *points.Matrix, c *points.Matrix32, aLo, aHi, bLo, bHi int, k Kernel, rho []float64, both bool) (pairs, rechecks int64) {
	if aHi <= aLo || bHi <= bLo {
		return 0, 0
	}
	ctx := newRho32Ctx(m, c, k, rho)
	for ta := aLo; ta < aHi; ta += tile {
		taHi := minInt(ta+tile, aHi)
		for tb := bLo; tb < bHi; tb += tile {
			ctx.crossTile(ta, taHi, tb, minInt(tb+tile, bHi), both)
		}
	}
	return int64(aHi-aLo) * int64(bHi-bLo), ctx.rechecks
}

// rho32Ctx carries the per-call state of a compact ρ scan.
type rho32Ctx struct {
	d64      []float64
	d32      []float32
	dim      int
	k        Kernel
	rho      []float64
	cutLo    float64 // d32 < cutLo proves d64 < Dc2 (cutoff weight 1)
	cutHi    float64 // d32 > cutHi proves d64 ≥ Dc2 (cutoff weight 0)
	rechecks int64
}

func newRho32Ctx(m *points.Matrix, c *points.Matrix32, k Kernel, rho []float64) *rho32Ctx {
	ctx := &rho32Ctx{d64: m.Data(), d32: c.Data(), dim: m.Dim(), k: k, rho: rho}
	if !k.Gaussian {
		bnd := F32Bounds(ctx.dim, c.MaxAbs())
		ctx.cutLo = bnd.LtThresh(k.Dc2)
		ctx.cutHi = bnd.GeThresh(k.Dc2)
	}
	return ctx
}

// weight resolves one pair's contribution from its compact distance,
// re-checking exactly when the compact value cannot decide.
func (ctx *rho32Ctx) weight(d32 float32, i, j int) float64 {
	df := float64(d32)
	if ctx.k.Gaussian {
		if isFinite64(df) {
			return gaussWeight(df, ctx.k.Dc2)
		}
	} else {
		if df < ctx.cutLo {
			return 1
		}
		if df > ctx.cutHi {
			return 0
		}
	}
	ctx.rechecks++
	return ctx.k.Weight(sqDistFlat(ctx.d64[i*ctx.dim:(i+1)*ctx.dim], ctx.d64[j*ctx.dim:(j+1)*ctx.dim], ctx.dim))
}

func (ctx *rho32Ctx) diagTile(lo, hi int) {
	d32, dim := ctx.d32, ctx.dim
	for i := lo; i < hi; i++ {
		ai := d32[i*dim : (i+1)*dim]
		for j := i + 1; j < hi; j++ {
			if w := ctx.weight(sqDist32(ai, d32[j*dim:(j+1)*dim], dim), i, j); w != 0 {
				ctx.rho[i] += w
				ctx.rho[j] += w
			}
		}
	}
}

func (ctx *rho32Ctx) crossTile(aLo, aHi, bLo, bHi int, both bool) {
	d32, dim := ctx.d32, ctx.dim
	for a := aLo; a < aHi; a++ {
		ra := d32[a*dim : (a+1)*dim]
		for b := bLo; b < bHi; b++ {
			if w := ctx.weight(sqDist32(ra, d32[b*dim:(b+1)*dim], dim), a, b); w != 0 {
				ctx.rho[a] += w
				if both {
					ctx.rho[b] += w
				}
			}
		}
	}
}

// DeltaBand holds per-row skip thresholds for a compact δ scan, kept in
// lockstep with a DeltaAcc: Thr[x] proves "no Best2[x] improvement" and
// MaxThr[x] proves "no Max2[x] update" from a compact distance alone.
type DeltaBand struct {
	Thr    []float64
	MaxThr []float64
	bnd    Bounds
}

// Reset sizes the band to acc (after acc's own Reset) under bnd.
func (b *DeltaBand) Reset(acc *DeltaAcc, bnd Bounds) {
	n := len(acc.Best2)
	b.bnd = bnd
	if cap(b.Thr) < n {
		b.Thr = make([]float64, n)
	}
	b.Thr = b.Thr[:n]
	for i := 0; i < n; i++ {
		b.Thr[i] = bnd.GeThresh(acc.Best2[i])
	}
	if acc.Max2 == nil {
		b.MaxThr = nil
		return
	}
	if cap(b.MaxThr) < n {
		b.MaxThr = make([]float64, n)
	}
	b.MaxThr = b.MaxThr[:n]
	for i := 0; i < n; i++ {
		b.MaxThr[i] = bnd.LtThresh(acc.Max2[i])
	}
}

// DeltaArgmin32 is the compact-scan counterpart of DeltaArgmin: c must
// mirror m, and band must be Reset against acc with this group's bounds
// (F32Bounds(m.Dim(), c.MaxAbs())). Returns the pair count and the number
// of exact re-checks.
func DeltaArgmin32(m *points.Matrix, c *points.Matrix32, lo, hi int, acc *DeltaAcc, band *DeltaBand) (pairs, rechecks int64) {
	n := hi - lo
	if n < 2 {
		return 0, 0
	}
	ctx := delta32Ctx{m: m, c: c, acc: acc, band: band}
	for ti := lo; ti < hi; ti += tile {
		tiHi := minInt(ti+tile, hi)
		ctx.tilePairs(ti, tiHi, ti, tiHi, true)
		for tj := tiHi; tj < hi; tj += tile {
			ctx.tilePairs(ti, tiHi, tj, minInt(tj+tile, hi), false)
		}
	}
	return int64(n) * int64(n-1) / 2, ctx.rechecks
}

// DeltaCross32 is the compact-scan counterpart of DeltaCross.
func DeltaCross32(m *points.Matrix, c *points.Matrix32, aLo, aHi, bLo, bHi int, acc *DeltaAcc, band *DeltaBand) (pairs, rechecks int64) {
	if aHi <= aLo || bHi <= bLo {
		return 0, 0
	}
	ctx := delta32Ctx{m: m, c: c, acc: acc, band: band}
	for ta := aLo; ta < aHi; ta += tile {
		taHi := minInt(ta+tile, aHi)
		for tb := bLo; tb < bHi; tb += tile {
			ctx.tilePairs(ta, taHi, tb, minInt(tb+tile, bHi), false)
		}
	}
	return int64(aHi-aLo) * int64(bHi-bLo), ctx.rechecks
}

type delta32Ctx struct {
	m        *points.Matrix
	c        *points.Matrix32
	acc      *DeltaAcc
	band     *DeltaBand
	rechecks int64
}

// tilePairs visits one tile pair (the diagonal triangle when diag is set).
// A pair is skipped only when the compact distance proves both that the
// less-dense side's Best2 cannot improve and (when tracked) that neither
// side's Max2 can grow; otherwise the exact distance is folded through
// deltaObserve and the row thresholds refresh.
func (ctx *delta32Ctx) tilePairs(aLo, aHi, bLo, bHi int, diag bool) {
	d32, dim := ctx.c.Data(), ctx.c.Dim()
	d64 := ctx.m.Data()
	rho, ids := ctx.m.Rhos(), ctx.m.IDs()
	acc, band := ctx.acc, ctx.band
	for i := aLo; i < aHi; i++ {
		ai := d32[i*dim : (i+1)*dim]
		jLo := bLo
		if diag {
			jLo = i + 1
		}
		for j := jLo; j < bHi; j++ {
			df := float64(sqDist32(ai, d32[j*dim:(j+1)*dim], dim))
			target := j
			if denserObserved(rho, ids, i, j) {
				target = i
			}
			if df > band.Thr[target] &&
				(band.MaxThr == nil || (df < band.MaxThr[i] && df < band.MaxThr[j])) {
				continue
			}
			ctx.rechecks++
			d2 := sqDistFlat(d64[i*dim:(i+1)*dim], d64[j*dim:(j+1)*dim], dim)
			oldBest := acc.Best2[target]
			var oldMaxI, oldMaxJ float64
			if acc.Max2 != nil {
				oldMaxI, oldMaxJ = acc.Max2[i], acc.Max2[j]
			}
			deltaObserve(acc, rho, ids, i, j, d2)
			if acc.Best2[target] != oldBest {
				band.Thr[target] = band.bnd.GeThresh(acc.Best2[target])
			}
			if acc.Max2 != nil {
				if acc.Max2[i] != oldMaxI {
					band.MaxThr[i] = band.bnd.LtThresh(acc.Max2[i])
				}
				if acc.Max2[j] != oldMaxJ {
					band.MaxThr[j] = band.bnd.LtThresh(acc.Max2[j])
				}
			}
		}
	}
}

// denserObserved mirrors deltaObserve's density-order test: true when row j
// is denser than row i (so i is the side whose upslope candidate updates).
func denserObserved(rho []float64, ids []int32, i, j int) bool {
	return dp.DenserVals(rho[j], rho[i], ids[j], ids[i])
}

func isFinite64(v float64) bool { return v-v == 0 }
