package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/points"
)

// Benchmarks for the compact scan path (make bench-scan). The NN scans
// measure one full pass over a 200k×8 block — the serving engine's exact
// fallback shape — per precision; NNBatch amortizes one pass over a
// 64-query micro-batch. CompactRho compares the reducer-side cutoff ρ
// kernel against its f32 band-check variant.

type scanFixture struct {
	n, dim int
	data   []float64
	data32 []float32
	maxAbs float64
	codes  []uint8
	par    points.Q8Params
	qs     []float64
	qs32   []float32
}

func newScanFixture(b *testing.B, n, dim, nq int) *scanFixture {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	f := &scanFixture{n: n, dim: dim}
	f.data = make([]float64, n*dim)
	for i := range f.data {
		f.data[i] = rng.NormFloat64() * 10
	}
	f.data32, f.maxAbs = points.ToFloat32(f.data)
	var ok bool
	f.codes, f.par, ok = points.QuantizeQ8(f.data, dim)
	if !ok {
		b.Fatal("quantize failed")
	}
	f.qs = make([]float64, nq*dim)
	for i := range f.qs {
		f.qs[i] = rng.NormFloat64() * 10
	}
	f.qs32, _ = points.ToFloat32(f.qs)
	return f
}

func BenchmarkNNScan(b *testing.B) {
	f := newScanFixture(b, 1_000_000, 8, 1)
	q := f.qs[:f.dim]
	b.Run("f64", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 8))
		for i := 0; i < b.N; i++ {
			NNRange(f.data, f.dim, q, 0, f.n)
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 4))
		bnd := F32Bounds(f.dim, f.maxAbs)
		var sl Shortlist
		for i := 0; i < b.N; i++ {
			sl.Reset(bnd)
			NNRange32(f.data32, f.dim, f.qs32[:f.dim], 0, f.n, &sl)
			NNRows(f.data, f.dim, q, sl.Finish())
		}
	})
	b.Run("q8", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim))
		bnd := Q8Bounds(f.dim, f.par.ErrBound())
		var lut Q8LUT
		var sl Shortlist
		for i := 0; i < b.N; i++ {
			BuildQ8LUT(f.par, q, &lut)
			sl.Reset(bnd)
			NNRangeQ8(f.codes, f.dim, &lut, 0, f.n, &sl)
			NNRows(f.data, f.dim, q, sl.Finish())
		}
	})
}

func BenchmarkNNBatch(b *testing.B) {
	const nq = 64
	f := newScanFixture(b, 1_000_000, 8, nq)
	b.Run("f64-seq", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 8 * nq))
		for i := 0; i < b.N; i++ {
			for qi := 0; qi < nq; qi++ {
				NNRange(f.data, f.dim, f.qs[qi*f.dim:(qi+1)*f.dim], 0, f.n)
			}
		}
	})
	best := make([]int32, nq)
	best2 := make([]float64, nq)
	b.Run("f64", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 8 * nq))
		for i := 0; i < b.N; i++ {
			NNBatch(f.data, f.dim, f.qs, 0, f.n, best, best2)
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 4 * nq))
		bnd := F32Bounds(f.dim, f.maxAbs)
		sls := make([]Shortlist, nq)
		for i := 0; i < b.N; i++ {
			for qi := range sls {
				sls[qi].Reset(bnd)
			}
			NNBatch32(f.data32, f.dim, f.qs32, 0, f.n, sls)
			for qi := range sls {
				NNRows(f.data, f.dim, f.qs[qi*f.dim:(qi+1)*f.dim], sls[qi].Finish())
			}
		}
	})
	b.Run("q8", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * nq))
		bnd := Q8Bounds(f.dim, f.par.ErrBound())
		sls := make([]Shortlist, nq)
		luts := make([]Q8LUT, nq)
		for i := 0; i < b.N; i++ {
			for qi := range sls {
				sls[qi].Reset(bnd)
				BuildQ8LUT(f.par, f.qs[qi*f.dim:(qi+1)*f.dim], &luts[qi])
			}
			NNBatchQ8(f.codes, f.dim, luts, 0, f.n, sls)
			for qi := range sls {
				NNRows(f.data, f.dim, f.qs[qi*f.dim:(qi+1)*f.dim], sls[qi].Finish())
			}
		}
	})
}

// BenchmarkTopKScan measures the k=10 top-k shapes the kNN-join reducers
// run: a 64-query batch over a 200k×8 block, per precision (the f32 arm
// includes the exact re-rank of each shortlist).
func BenchmarkTopKScan(b *testing.B) {
	const nq, k = 64, 10
	f := newScanFixture(b, 200_000, 8, nq)
	b.Run("f64", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 8 * nq))
		accs := make([]TopKAcc, nq)
		for i := 0; i < b.N; i++ {
			for qi := range accs {
				accs[qi].Reset(k)
			}
			TopKBatch(f.data, f.dim, f.qs, 0, f.n, accs)
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(f.n * f.dim * 4 * nq))
		bnd := F32Bounds(f.dim, f.maxAbs)
		sls := make([]TopKShortlist, nq)
		accs := make([]TopKAcc, nq)
		for i := 0; i < b.N; i++ {
			for qi := range sls {
				sls[qi].Reset(k, bnd)
				accs[qi].Reset(k)
			}
			TopKBatch32(f.data32, f.dim, f.qs32, 0, f.n, sls)
			for qi := range sls {
				TopKRows(f.data, f.dim, f.qs[qi*f.dim:(qi+1)*f.dim], sls[qi].Finish(), &accs[qi])
			}
		}
	})
}

func BenchmarkCompactRho(b *testing.B) {
	const n, dim = 4000, 8
	f := newScanFixture(b, n, dim, 1)
	rho := make([]float64, n)
	m := buildRhoMatrix(b, f.data, dim, rho)
	k := Kernel{Dc2: 100 * float64(dim)}
	out := make([]float64, n)
	b.Run("f64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			RhoAccumulate(m, 0, n, k, out)
		}
	})
	b.Run("f32", func(b *testing.B) {
		c := points.GetMatrix32(m)
		defer points.PutMatrix32(c)
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			RhoAccumulate32(m, c, 0, n, k, out)
		}
	})
}
