package kernels

// Top-k nearest-neighbor scan kernels for the kNN-join subsystem: given a
// query position and a flat SoA coordinate block, maintain the k nearest
// rows instead of the single nearest. The accumulator is a fixed-size
// binary max-heap ordered by (squared distance, row index), so the root is
// always the worst kept entry and a scanned row pays one comparison against
// it in the common reject case.
//
// The tie rule extends the NN kernels' "lowest row index wins": when a new
// row ties the current k-th distance, it displaces the kept entry only if
// its row index is lower, and Append returns entries sorted ascending by
// (distance, row). A row whose squared distance is not finite (+Inf from
// overflow, NaN from Inf−Inf) is ineligible, matching NNRange's "(-1, +Inf)
// when no row has a finite distance" contract — so the result set depends
// only on which rows were observed, never on observation order, and any
// tiling or chunking of a scan is bit-identical to the flat loop.

import "sort"

// TopKEntry is one kept neighbor: a matrix row index and its exact squared
// distance to the query.
type TopKEntry struct {
	Row int32
	D2  float64
}

// topkWorse reports whether entry a ranks strictly worse than entry b under
// the scan order: larger squared distance, higher row index on ties.
func topkWorse(a, b TopKEntry) bool {
	return a.D2 > b.D2 || (a.D2 == b.D2 && a.Row > b.Row)
}

// TopKAcc accumulates the k nearest rows observed so far. The zero value is
// unusable; call Reset (or NewTopKAcc) with k ≥ 1 first. One accumulator is
// reusable across queries via Reset, keeping its heap storage.
type TopKAcc struct {
	k int
	h []TopKEntry // max-heap under topkWorse; h[0] is the worst kept entry
}

// NewTopKAcc returns an accumulator holding up to k rows.
func NewTopKAcc(k int) *TopKAcc {
	a := &TopKAcc{}
	a.Reset(k)
	return a
}

// Reset empties the accumulator for a new query keeping storage; k must be
// at least 1.
func (a *TopKAcc) Reset(k int) {
	if k < 1 {
		panic("kernels: TopKAcc needs k >= 1")
	}
	a.k = k
	a.h = a.h[:0]
}

// K returns the configured capacity.
func (a *TopKAcc) K() int { return a.k }

// Len returns the number of rows currently held (≤ k; fewer than k when the
// scan saw fewer than k rows with finite distances).
func (a *TopKAcc) Len() int { return len(a.h) }

// Threshold returns the squared distance a new row must beat — or tie with
// a lower row index — to enter the accumulator: the current k-th best
// distance once full, +Inf before that. Callers hoist it as the hot-loop
// early reject (strict `d2 > Threshold()` skips; ties still reach observe
// for the row-index comparison).
func (a *TopKAcc) Threshold() float64 {
	if len(a.h) < a.k {
		return inf
	}
	return a.h[0].D2
}

// observe folds one scanned row into the heap. Non-finite distances are
// ineligible (see the package comment above).
func (a *TopKAcc) observe(row int32, d2 float64) {
	if !(d2 < inf) {
		return
	}
	if len(a.h) < a.k {
		a.h = append(a.h, TopKEntry{Row: row, D2: d2})
		a.siftUp(len(a.h) - 1)
		return
	}
	r := a.h[0]
	if d2 < r.D2 || (d2 == r.D2 && row < r.Row) {
		a.h[0] = TopKEntry{Row: row, D2: d2}
		a.siftDown(0)
	}
}

func (a *TopKAcc) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !topkWorse(a.h[i], a.h[p]) {
			return
		}
		a.h[i], a.h[p] = a.h[p], a.h[i]
		i = p
	}
}

func (a *TopKAcc) siftDown(i int) {
	n := len(a.h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && topkWorse(a.h[r], a.h[c]) {
			c = r
		}
		if !topkWorse(a.h[c], a.h[i]) {
			return
		}
		a.h[i], a.h[c] = a.h[c], a.h[i]
		i = c
	}
}

// Append appends the kept entries to dst sorted ascending by (distance,
// row) and returns the extended slice. The accumulator is left intact.
func (a *TopKAcc) Append(dst []TopKEntry) []TopKEntry {
	off := len(dst)
	dst = append(dst, a.h...)
	out := dst[off:]
	sort.Slice(out, func(i, j int) bool { return topkWorse(out[j], out[i]) })
	return dst
}

// topkScanRange extends acc with rows [lo, hi) of the flat row-major block
// data, sharing sqDistFlat's arithmetic (and its dim-2 unrolled statement
// shape) with the NN kernels so distances are bit-identical across both.
func topkScanRange(data []float64, dim int, q []float64, lo, hi int, acc *TopKAcc) {
	thr := acc.Threshold()
	if dim == 2 {
		qx, qy := q[0], q[1]
		for i := lo; i < hi; i++ {
			d0 := qx - data[2*i]
			d1 := qy - data[2*i+1]
			d2 := d0 * d0
			d2 += d1 * d1
			if d2 > thr {
				continue
			}
			acc.observe(int32(i), d2)
			thr = acc.Threshold()
		}
		return
	}
	for i := lo; i < hi; i++ {
		d2 := sqDistFlat(q, data[i*dim:(i+1)*dim], dim)
		if d2 > thr {
			continue
		}
		acc.observe(int32(i), d2)
		thr = acc.Threshold()
	}
}

// TopKRange scans rows [lo, hi) of data (rows of length dim) into acc,
// which the caller has Reset for this query.
func TopKRange(data []float64, dim int, q []float64, lo, hi int, acc *TopKAcc) {
	topkScanRange(data, dim, q, lo, hi, acc)
}

// TopKRows scans only the listed rows into acc. Order does not matter, but
// unlike NNRows the rows must be distinct: a duplicated row would occupy
// two of the k slots. (Shortlists produced by the compact kernels list each
// row at most once.)
func TopKRows(data []float64, dim int, q []float64, rows []int32, acc *TopKAcc) {
	thr := acc.Threshold()
	for _, r := range rows {
		i := int(r)
		d2 := sqDistFlat(q, data[i*dim:(i+1)*dim], dim)
		if d2 > thr {
			continue
		}
		acc.observe(r, d2)
		thr = acc.Threshold()
	}
}

// TopKBatch is the multi-query variant of TopKRange: one pass over each row
// tile serves every query in the batch (qs flat, len(accs)*dim), exactly
// like NNBatch. Each accumulator must be Reset by the caller; per query the
// rows arrive in ascending order and the result is bit-identical to a
// standalone TopKRange call.
func TopKBatch(data []float64, dim int, qs []float64, lo, hi int, accs []TopKAcc) {
	batchTiles(lo, hi, len(accs), func(qi, tLo, tHi int) {
		topkScanRange(data, dim, qs[qi*dim:(qi+1)*dim], tLo, tHi, &accs[qi])
	})
}
