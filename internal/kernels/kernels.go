// Package kernels provides the dense pairwise compute layer shared by every
// distributed Density Peaks pipeline in this repository: blocked (tiled)
// ρ-accumulation and δ-argmin kernels over the flat SoA layout of
// points.Matrix, plus an opt-in intra-partition parallel path for skewed
// reducer groups (see parallel.go).
//
// The paper's dominant cost is pairwise distance work inside reducers, and
// the previous implementation ran it as a scalar loop over heap-allocated
// per-point Vectors. These kernels walk one contiguous coordinate array in
// cache-sized tiles instead, with an unrolled fast path for the 2- and
// 3-dimensional data sets the paper evaluates.
//
// Determinism guarantee: every serial kernel performs the same floating
// point operations in the same per-accumulator order as the naive
//
//	for i { for j > i { ... } }
//
// reference loop, so ρ sums and δ argmins are bit-identical to the
// pre-kernel implementation (the property tests in kernels_test.go assert
// this across dimensions, kernels, and chunkings). Tiles are visited in
// row-major upper-triangle order — for any accumulator row x the pairs
// (k, x), k < x arrive in ascending k and then the pairs (x, j), j > x in
// ascending j, exactly the order of the reference loop, so non-associative
// float addition cannot diverge.
package kernels

import (
	"math"

	"repro/internal/dp"
	"repro/internal/points"
)

var inf = math.Inf(1)

// gaussWeight is the Gaussian kernel contribution, exp(−d²/d_c²).
func gaussWeight(d2, dc2 float64) float64 { return math.Exp(-d2 / dc2) }

// tile is the block edge length of the pairwise loops. 128 rows of a
// 2-dimensional float64 matrix are 2 KiB, so one tile pair stays resident
// in L1 while its up-to-16k distance evaluations run.
const tile = 128

// Kernel selects the density estimator for the ρ kernels: the paper's
// cutoff kernel (weight 1 below d_c) or the Gaussian extension.
type Kernel struct {
	Gaussian bool
	Dc2      float64 // squared cutoff distance
}

// Weight returns the ρ contribution of one pair at squared distance d2.
func (k Kernel) Weight(d2 float64) float64 {
	if k.Gaussian {
		return gaussWeight(d2, k.Dc2)
	}
	if d2 < k.Dc2 {
		return 1
	}
	return 0
}

// RhoAccumulate adds every unordered pair's density contribution within
// rows [lo, hi) of m into rho (indexed like m's rows), returning the number
// of distance evaluations. Bit-identical to the naive i<j loop.
func RhoAccumulate(m *points.Matrix, lo, hi int, k Kernel, rho []float64) int64 {
	n := hi - lo
	if n < 2 {
		return 0
	}
	data, dim := m.Data(), m.Dim()
	for ti := lo; ti < hi; ti += tile {
		tiHi := minInt(ti+tile, hi)
		rhoDiagTile(data, dim, ti, tiHi, k, rho)
		for tj := tiHi; tj < hi; tj += tile {
			rhoCrossTile(data, dim, ti, tiHi, tj, minInt(tj+tile, hi), k, rho, true)
		}
	}
	return int64(n) * int64(n-1) / 2
}

// RhoCross adds the contributions of every pair (a, b) with a in rows
// [aLo, aHi) and b in rows [bLo, bHi) — two disjoint row ranges of m — into
// rho. When both is false only the a-side rows accumulate (EDDPC's
// home-vs-visitor counting). Bit-identical to the naive a-outer b-inner
// loop. Returns the number of distance evaluations.
func RhoCross(m *points.Matrix, aLo, aHi, bLo, bHi int, k Kernel, rho []float64, both bool) int64 {
	if aHi <= aLo || bHi <= bLo {
		return 0
	}
	data, dim := m.Data(), m.Dim()
	for ta := aLo; ta < aHi; ta += tile {
		taHi := minInt(ta+tile, aHi)
		for tb := bLo; tb < bHi; tb += tile {
			rhoCrossTile(data, dim, ta, taHi, tb, minInt(tb+tile, bHi), k, rho, both)
		}
	}
	return int64(aHi-aLo) * int64(bHi-bLo)
}

// rhoDiagTile runs the naive upper-triangle loop within one diagonal tile.
func rhoDiagTile(data []float64, dim, lo, hi int, k Kernel, rho []float64) {
	if dim == 2 && !k.Gaussian {
		dc2 := k.Dc2
		for i := lo; i < hi; i++ {
			xi, yi := data[2*i], data[2*i+1]
			for j := i + 1; j < hi; j++ {
				d0 := xi - data[2*j]
				d1 := yi - data[2*j+1]
				d2 := d0 * d0
				d2 += d1 * d1
				if d2 < dc2 {
					rho[i]++
					rho[j]++
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		ai := data[i*dim : (i+1)*dim]
		for j := i + 1; j < hi; j++ {
			d2 := sqDistFlat(ai, data[j*dim:(j+1)*dim], dim)
			if w := k.Weight(d2); w != 0 {
				rho[i] += w
				rho[j] += w
			}
		}
	}
}

// rhoCrossTile runs the naive a-outer b-inner loop over one tile pair.
func rhoCrossTile(data []float64, dim, aLo, aHi, bLo, bHi int, k Kernel, rho []float64, both bool) {
	if dim == 2 && !k.Gaussian {
		dc2 := k.Dc2
		for a := aLo; a < aHi; a++ {
			xa, ya := data[2*a], data[2*a+1]
			for b := bLo; b < bHi; b++ {
				d0 := xa - data[2*b]
				d1 := ya - data[2*b+1]
				d2 := d0 * d0
				d2 += d1 * d1
				if d2 < dc2 {
					rho[a]++
					if both {
						rho[b]++
					}
				}
			}
		}
		return
	}
	for a := aLo; a < aHi; a++ {
		ra := data[a*dim : (a+1)*dim]
		for b := bLo; b < bHi; b++ {
			d2 := sqDistFlat(ra, data[b*dim:(b+1)*dim], dim)
			if w := k.Weight(d2); w != 0 {
				rho[a] += w
				if both {
					rho[b] += w
				}
			}
		}
	}
}

// DeltaAcc accumulates the δ-argmin state of one reducer group: per row the
// squared distance to the nearest denser row (Best2), that row's index in
// the matrix (Up, -1 when none seen), and — when tracking fallbacks for
// Basic-DDP's absolute-peak rule — the largest squared distance observed
// (Max2).
type DeltaAcc struct {
	Best2 []float64
	Up    []int32 // matrix row index of the best candidate, -1 when none
	Max2  []float64
}

// NewDeltaAcc returns an accumulator for n rows, with fallback tracking
// when withMax is set.
func NewDeltaAcc(n int, withMax bool) *DeltaAcc {
	acc := &DeltaAcc{Best2: make([]float64, n), Up: make([]int32, n)}
	for i := range acc.Best2 {
		acc.Best2[i] = inf
		acc.Up[i] = -1
	}
	if withMax {
		acc.Max2 = make([]float64, n)
	}
	return acc
}

// Reset re-initialises the accumulator for n rows, reusing its slices when
// capacity allows, so a hot reducer can keep one accumulator across groups.
func (a *DeltaAcc) Reset(n int, withMax bool) {
	if cap(a.Best2) < n {
		a.Best2 = make([]float64, n)
		a.Up = make([]int32, n)
	}
	a.Best2 = a.Best2[:n]
	a.Up = a.Up[:n]
	for i := 0; i < n; i++ {
		a.Best2[i] = inf
		a.Up[i] = -1
	}
	if !withMax {
		a.Max2 = nil
		return
	}
	if cap(a.Max2) < n {
		a.Max2 = make([]float64, n)
	}
	a.Max2 = a.Max2[:n]
	for i := 0; i < n; i++ {
		a.Max2[i] = 0
	}
}

// DeltaArgmin evaluates every unordered pair within rows [lo, hi) of m
// (which must carry densities) under the repository's density total order:
// the less dense row of each pair sees the other as an upslope candidate.
// Bit-identical to the naive i<j loop, including the first-wins tie rule
// for equal distances. Returns the number of distance evaluations.
func DeltaArgmin(m *points.Matrix, lo, hi int, acc *DeltaAcc) int64 {
	n := hi - lo
	if n < 2 {
		return 0
	}
	for ti := lo; ti < hi; ti += tile {
		tiHi := minInt(ti+tile, hi)
		deltaDiagTile(m, ti, tiHi, acc)
		for tj := tiHi; tj < hi; tj += tile {
			deltaCrossTile(m, ti, tiHi, tj, minInt(tj+tile, hi), acc)
		}
	}
	return int64(n) * int64(n-1) / 2
}

// DeltaCross evaluates every pair (a, b) across two disjoint row ranges,
// updating both sides' candidates (Basic-DDP's visitor-vs-local pass).
// Bit-identical to the naive a-outer b-inner loop. Returns the number of
// distance evaluations.
func DeltaCross(m *points.Matrix, aLo, aHi, bLo, bHi int, acc *DeltaAcc) int64 {
	if aHi <= aLo || bHi <= bLo {
		return 0
	}
	for ta := aLo; ta < aHi; ta += tile {
		taHi := minInt(ta+tile, aHi)
		for tb := bLo; tb < bHi; tb += tile {
			deltaCrossTile(m, ta, taHi, tb, minInt(tb+tile, bHi), acc)
		}
	}
	return int64(aHi-aLo) * int64(bHi-bLo)
}

// deltaObserve folds one evaluated pair (i, j) into the accumulator under
// the density total order.
func deltaObserve(acc *DeltaAcc, rho []float64, ids []int32, i, j int, d2 float64) {
	if acc.Max2 != nil {
		if d2 > acc.Max2[i] {
			acc.Max2[i] = d2
		}
		if d2 > acc.Max2[j] {
			acc.Max2[j] = d2
		}
	}
	if dp.DenserVals(rho[j], rho[i], ids[j], ids[i]) {
		if d2 < acc.Best2[i] {
			acc.Best2[i] = d2
			acc.Up[i] = int32(j)
		}
	} else if d2 < acc.Best2[j] {
		acc.Best2[j] = d2
		acc.Up[j] = int32(i)
	}
}

func deltaDiagTile(m *points.Matrix, lo, hi int, acc *DeltaAcc) {
	data, dim := m.Data(), m.Dim()
	rho, ids := m.Rhos(), m.IDs()
	if dim == 2 {
		for i := lo; i < hi; i++ {
			xi, yi := data[2*i], data[2*i+1]
			for j := i + 1; j < hi; j++ {
				d0 := xi - data[2*j]
				d1 := yi - data[2*j+1]
				d2 := d0 * d0
				d2 += d1 * d1
				deltaObserve(acc, rho, ids, i, j, d2)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		ai := data[i*dim : (i+1)*dim]
		for j := i + 1; j < hi; j++ {
			deltaObserve(acc, rho, ids, i, j, sqDistFlat(ai, data[j*dim:(j+1)*dim], dim))
		}
	}
}

func deltaCrossTile(m *points.Matrix, aLo, aHi, bLo, bHi int, acc *DeltaAcc) {
	data, dim := m.Data(), m.Dim()
	rho, ids := m.Rhos(), m.IDs()
	if dim == 2 {
		for a := aLo; a < aHi; a++ {
			xa, ya := data[2*a], data[2*a+1]
			for b := bLo; b < bHi; b++ {
				d0 := xa - data[2*b]
				d1 := ya - data[2*b+1]
				d2 := d0 * d0
				d2 += d1 * d1
				deltaObserve(acc, rho, ids, a, b, d2)
			}
		}
		return
	}
	for a := aLo; a < aHi; a++ {
		ra := data[a*dim : (a+1)*dim]
		for b := bLo; b < bHi; b++ {
			deltaObserve(acc, rho, ids, a, b, sqDistFlat(ra, data[b*dim:(b+1)*dim], dim))
		}
	}
}

// sqDistFlat is the squared Euclidean distance over two flat rows. The
// unrolled cases keep the exact statement shape of the generic loop
// (separate multiply then add per coordinate) so their rounding matches the
// reference implementation bit-for-bit.
func sqDistFlat(a, b []float64, dim int) float64 {
	switch dim {
	case 2:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		s := d0 * d0
		s += d1 * d1
		return s
	case 3:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		s := d0 * d0
		s += d1 * d1
		s += d2 * d2
		return s
	}
	var s float64
	for t := 0; t < dim; t++ {
		d := a[t] - b[t]
		s += d * d
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
