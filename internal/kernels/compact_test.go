package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
)

// Property tests for the compact scan path. The contract under test: a
// compact (f32 or q8) scan followed by an exact float64 re-rank of the
// shortlist is bit-identical to the pure float64 NN scan — same row index,
// same squared distance, same lowest-row-index tie rule, including the
// all-distances-overflow (-1, +Inf) case — and the compact ρ/δ kernels
// leave their accumulators in bit-identical float64 states (cutoff ρ and
// all δ state; Gaussian ρ within documented tolerance).

// randBlock fills n rows of dim at the given magnitude scale; a few
// duplicate and near-tie rows are planted to stress the tie rule and the
// admission band.
func randBlock(rng *rand.Rand, n, dim int, scale float64) []float64 {
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.NormFloat64() * scale
	}
	// Exact duplicates: rows k and k+1 identical (distance ties).
	for k := 0; k+1 < n; k += 7 {
		copy(data[(k+1)*dim:(k+2)*dim], data[k*dim:(k+1)*dim])
	}
	// Near ties: rows differing by one ulp-scale nudge in one coordinate.
	for k := 3; k+1 < n; k += 11 {
		copy(data[(k+1)*dim:(k+2)*dim], data[k*dim:(k+1)*dim])
		data[(k+1)*dim] = math.Nextafter(data[(k+1)*dim], math.Inf(1))
	}
	return data
}

// rerank32 runs the f32 shortlist scan over [0, n) and re-ranks exactly.
func rerank32(data []float64, dim int, q []float64, bnd Bounds) (int, float64, int) {
	data32, _ := points.ToFloat32(data)
	q32, _ := points.ToFloat32(q)
	var sl Shortlist
	sl.Reset(bnd)
	NNRange32(data32, dim, q32, 0, len(data)/dim, &sl)
	short := sl.Finish()
	b, b2 := NNRows(data, dim, q, short)
	return b, b2, len(short)
}

// rerankQ8 quantizes the block, scans it via a per-query LUT, re-ranks.
func rerankQ8(t *testing.T, data []float64, dim int, q []float64) (int, float64, int) {
	t.Helper()
	codes, par, ok := points.QuantizeQ8(data, dim)
	if !ok {
		t.Fatal("quantize failed")
	}
	var lut Q8LUT
	BuildQ8LUT(par, q, &lut)
	var sl Shortlist
	sl.Reset(Q8Bounds(dim, par.ErrBound()))
	NNRangeQ8(codes, dim, &lut, 0, len(data)/dim, &sl)
	short := sl.Finish()
	b, b2 := NNRows(data, dim, q, short)
	return b, b2, len(short)
}

func blockMaxAbs(data []float64, q []float64) float64 {
	var m float64
	for _, v := range data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for _, v := range q {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func TestCompactNNBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for _, scale := range []float64{1, 1e6, 1e-6, 1e120} {
			n := 300
			data := randBlock(rng, n, dim, scale)
			for trial := 0; trial < 25; trial++ {
				q := make([]float64, dim)
				for d := range q {
					q[d] = rng.NormFloat64() * scale
				}
				if trial%5 == 0 { // exact hit: query equals a stored row
					copy(q, data[(trial*13%n)*dim:])
				}
				wantB, wantB2 := NNRange(data, dim, q, 0, n)

				bnd := F32Bounds(dim, blockMaxAbs(data, q))
				gotB, gotB2, short := rerank32(data, dim, q, bnd)
				if gotB != wantB || gotB2 != wantB2 {
					t.Fatalf("f32 dim=%d scale=%g trial=%d: got (%d, %v), want (%d, %v)",
						dim, scale, trial, gotB, gotB2, wantB, wantB2)
				}
				if short > n/4 && scale != 1e120 {
					t.Errorf("f32 dim=%d scale=%g: shortlist %d of %d rows — bound too loose", dim, scale, short, n)
				}

				qB, qB2, _ := rerankQ8(t, data, dim, q)
				if qB != wantB || qB2 != wantB2 {
					t.Fatalf("q8 dim=%d scale=%g trial=%d: got (%d, %v), want (%d, %v)",
						dim, scale, trial, qB, qB2, wantB, wantB2)
				}
			}
		}
	}
}

// TestCompactNNRowsSubset exercises the candidate-list (pruned) variant:
// shortlist over an arbitrary row subset re-ranked exactly must match
// NNRows over the same subset, duplicates and all.
func TestCompactNNRowsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim, n := 4, 500
	data := randBlock(rng, n, dim, 10)
	data32, maxAbs := points.ToFloat32(data)
	codes, par, ok := points.QuantizeQ8(data, dim)
	if !ok {
		t.Fatal("quantize failed")
	}
	for trial := 0; trial < 50; trial++ {
		rows := make([]int32, 1+rng.Intn(200))
		for i := range rows {
			rows[i] = int32(rng.Intn(n))
		}
		q := make([]float64, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 10
		}
		wantB, wantB2 := NNRows(data, dim, q, rows)

		q32, qMax := points.ToFloat32(q)
		var sl Shortlist
		sl.Reset(F32Bounds(dim, math.Max(maxAbs, qMax)))
		NNRows32(data32, dim, q32, rows, &sl)
		gotB, gotB2 := NNRows(data, dim, q, sl.Finish())
		if gotB != wantB || gotB2 != wantB2 {
			t.Fatalf("f32 rows trial %d: got (%d, %v), want (%d, %v)", trial, gotB, gotB2, wantB, wantB2)
		}

		var lut Q8LUT
		BuildQ8LUT(par, q, &lut)
		sl.Reset(Q8Bounds(dim, par.ErrBound()))
		NNRowsQ8(codes, dim, &lut, rows, &sl)
		gotB, gotB2 = NNRows(data, dim, q, sl.Finish())
		if gotB != wantB || gotB2 != wantB2 {
			t.Fatalf("q8 rows trial %d: got (%d, %v), want (%d, %v)", trial, gotB, gotB2, wantB, wantB2)
		}
	}
}

// TestCompactNNOverflow pins the ±Inf path from the PR 5 review fix:
// coordinates near the serving admission bound square to +Inf in float64,
// and overflow float32 outright; the compact path must keep such rows in
// the shortlist and reproduce the exact scan's (-1, +Inf) verdict.
func TestCompactNNOverflow(t *testing.T) {
	dim := 2
	huge := 1e160 // d² overflows f32 (and pair distances overflow f64)
	data := []float64{huge, huge, -huge, -huge, huge, -huge}
	q := []float64{-huge, huge}
	wantB, wantB2 := NNRange(data, dim, q, 0, 3)
	if wantB != -1 || !math.IsInf(wantB2, 1) {
		t.Fatalf("reference not overflowing: (%d, %v)", wantB, wantB2)
	}
	bnd := F32Bounds(dim, huge)
	gotB, gotB2, short := rerank32(data, dim, q, bnd)
	if gotB != wantB || gotB2 != wantB2 {
		t.Fatalf("f32 overflow: got (%d, %v), want (-1, +Inf)", gotB, gotB2)
	}
	if short != 3 {
		t.Fatalf("overflowing rows must all be shortlisted, got %d of 3", short)
	}

	// Mixed: one ordinary row among the overflowing ones must win.
	data = append(data, 1, 2)
	wantB, wantB2 = NNRange(data, dim, q, 0, 4)
	gotB, gotB2, _ = rerank32(data, dim, q, F32Bounds(dim, huge))
	if gotB != wantB || gotB2 != wantB2 {
		t.Fatalf("f32 mixed overflow: got (%d, %v), want (%d, %v)", gotB, gotB2, wantB, wantB2)
	}
	qB, qB2, _ := rerankQ8(t, data, dim, q)
	if qB != wantB || qB2 != wantB2 {
		t.Fatalf("q8 mixed overflow: got (%d, %v), want (%d, %v)", qB, qB2, wantB, wantB2)
	}
}

// TestShortlistRefilterGrowth drives the shortlist past its compaction
// limit with thousands of exact ties, which no threshold can prune.
func TestShortlistRefilterGrowth(t *testing.T) {
	dim, n := 2, 2000
	data := make([]float64, n*dim) // every row identical → all rows tie
	q := []float64{1, 1}
	wantB, wantB2 := NNRange(data, dim, q, 0, n)
	bnd := F32Bounds(dim, 1)
	gotB, gotB2, short := rerank32(data, dim, q, bnd)
	if gotB != wantB || gotB2 != wantB2 {
		t.Fatalf("tie flood: got (%d, %v), want (%d, %v)", gotB, gotB2, wantB, wantB2)
	}
	if short != n {
		t.Fatalf("tie flood must keep all %d rows, kept %d", n, short)
	}
	if wantB != 0 {
		t.Fatalf("tie rule: want row 0, got %d", wantB)
	}
}

func TestNNBatchMatchesNNRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim, n := 6, 700
	data := randBlock(rng, n, dim, 5)
	for _, nq := range []int{1, 2, 17, 64} {
		qs := make([]float64, nq*dim)
		for i := range qs {
			qs[i] = rng.NormFloat64() * 5
		}
		best := make([]int32, nq)
		best2 := make([]float64, nq)
		for _, lo := range []int{0, 129} {
			NNBatch(data, dim, qs, lo, n, best, best2)
			for qi := 0; qi < nq; qi++ {
				wb, wb2 := NNRange(data, dim, qs[qi*dim:(qi+1)*dim], lo, n)
				if int(best[qi]) != wb || best2[qi] != wb2 {
					t.Fatalf("nq=%d lo=%d q=%d: got (%d, %v), want (%d, %v)",
						nq, lo, qi, best[qi], best2[qi], wb, wb2)
				}
			}
		}
	}
	// dim-2 fast path.
	dim = 2
	data = randBlock(rng, n, dim, 5)
	qs := make([]float64, 8*dim)
	for i := range qs {
		qs[i] = rng.NormFloat64() * 5
	}
	best := make([]int32, 8)
	best2 := make([]float64, 8)
	NNBatch(data, dim, qs, 0, n, best, best2)
	for qi := 0; qi < 8; qi++ {
		wb, wb2 := NNRange(data, dim, qs[qi*dim:(qi+1)*dim], 0, n)
		if int(best[qi]) != wb || best2[qi] != wb2 {
			t.Fatalf("dim2 q=%d: got (%d, %v), want (%d, %v)", qi, best[qi], best2[qi], wb, wb2)
		}
	}
}

func TestNNBatch32MatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dim, n, nq := 8, 600, 32
	data := randBlock(rng, n, dim, 3)
	data32, maxAbs := points.ToFloat32(data)
	codes, par, ok := points.QuantizeQ8(data, dim)
	if !ok {
		t.Fatal("quantize failed")
	}
	qs := make([]float64, nq*dim)
	for i := range qs {
		qs[i] = rng.NormFloat64() * 3
	}
	qs32, qMax := points.ToFloat32(qs)
	bnd := F32Bounds(dim, math.Max(maxAbs, qMax))

	sls := make([]Shortlist, nq)
	for i := range sls {
		sls[i].Reset(bnd)
	}
	NNBatch32(data32, dim, qs32, 0, n, sls)
	for qi := 0; qi < nq; qi++ {
		q := qs[qi*dim : (qi+1)*dim]
		wb, wb2 := NNRange(data, dim, q, 0, n)
		gb, gb2 := NNRows(data, dim, q, sls[qi].Finish())
		if gb != wb || gb2 != wb2 {
			t.Fatalf("f32 batch q=%d: got (%d, %v), want (%d, %v)", qi, gb, gb2, wb, wb2)
		}
	}

	qbnd := Q8Bounds(dim, par.ErrBound())
	luts := make([]Q8LUT, nq)
	for i := range sls {
		sls[i].Reset(qbnd)
		BuildQ8LUT(par, qs[i*dim:(i+1)*dim], &luts[i])
	}
	NNBatchQ8(codes, dim, luts, 0, n, sls)
	for qi := 0; qi < nq; qi++ {
		q := qs[qi*dim : (qi+1)*dim]
		wb, wb2 := NNRange(data, dim, q, 0, n)
		gb, gb2 := NNRows(data, dim, q, sls[qi].Finish())
		if gb != wb || gb2 != wb2 {
			t.Fatalf("q8 batch q=%d: got (%d, %v), want (%d, %v)", qi, gb, gb2, wb, wb2)
		}
	}
}

// buildRhoMatrix assembles a Matrix with densities via the wire decoder.
func buildRhoMatrix(t testing.TB, data []float64, dim int, rho []float64) *points.Matrix {
	t.Helper()
	n := len(data) / dim
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		var buf []byte
		id := int32(i*3 + 1) // non-trivial IDs for the density order
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		d := uint32(dim)
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		for _, v := range data[i*dim : (i+1)*dim] {
			buf = points.AppendFloat64(buf, v)
		}
		buf = points.AppendFloat64(buf, rho[i])
		vals[i] = buf
	}
	m := new(points.Matrix)
	if err := points.DecodeRhoPointsInto(m, vals); err != nil {
		t.Fatal(err)
	}
	return m
}

// nearTieRho builds densities with planted exact ties so the ID tiebreak
// of the density order is exercised.
func nearTieRho(rng *rand.Rand, n int) []float64 {
	rho := make([]float64, n)
	for i := range rho {
		rho[i] = float64(rng.Intn(n / 4)) // many exact density ties
	}
	return rho
}

func TestRho32CutoffBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dim := range []int{2, 3, 8} {
		n := 400
		data := randBlock(rng, n, dim, 1)
		rho := nearTieRho(rng, n)
		m := buildRhoMatrix(t, data, dim, rho)
		c := points.GetMatrix32(m)
		defer points.PutMatrix32(c)

		// dc chosen as an actual pair distance so the boundary band is hit.
		dc2 := sqDistFlat(data[0:dim], data[dim:2*dim], dim)
		k := Kernel{Dc2: dc2}

		want := make([]float64, n)
		RhoAccumulate(m, 0, n, k, want)
		got := make([]float64, n)
		pairs, rechecks := RhoAccumulate32(m, c, 0, n, k, got)
		if pairs != int64(n)*int64(n-1)/2 {
			t.Fatalf("dim %d: pair count %d", dim, pairs)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dim %d row %d: rho %v != %v", dim, i, got[i], want[i])
			}
		}
		if rechecks > pairs/10 {
			t.Errorf("dim %d: %d/%d pairs re-checked — band too wide", dim, rechecks, pairs)
		}

		// Cross kernel, both directions of accumulation.
		for _, both := range []bool{true, false} {
			want := make([]float64, n)
			RhoCross(m, 0, n/3, n/3, n, k, want, both)
			got := make([]float64, n)
			RhoCross32(m, c, 0, n/3, n/3, n, k, got, both)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d cross both=%v row %d: %v != %v", dim, both, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRho32GaussianTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dim, n := 3, 300
	data := randBlock(rng, n, dim, 1)
	rho := nearTieRho(rng, n)
	m := buildRhoMatrix(t, data, dim, rho)
	c := points.GetMatrix32(m)
	defer points.PutMatrix32(c)
	k := Kernel{Gaussian: true, Dc2: 0.5}
	want := make([]float64, n)
	RhoAccumulate(m, 0, n, k, want)
	got := make([]float64, n)
	RhoAccumulate32(m, c, 0, n, k, got)
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		if diff > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("row %d: gaussian rho %v vs %v (diff %g) outside tolerance", i, got[i], want[i], diff)
		}
	}
}

func TestDelta32BitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range []int{2, 5} {
		for _, withMax := range []bool{false, true} {
			n := 400
			data := randBlock(rng, n, dim, 1)
			rho := nearTieRho(rng, n)
			m := buildRhoMatrix(t, data, dim, rho)
			c := points.GetMatrix32(m)

			want := NewDeltaAcc(n, withMax)
			DeltaArgmin(m, 0, n, want)
			got := NewDeltaAcc(n, withMax)
			var band DeltaBand
			band.Reset(got, F32Bounds(dim, c.MaxAbs()))
			pairs, rechecks := DeltaArgmin32(m, c, 0, n, got, &band)
			compareDeltaAccs(t, "argmin", want, got, dim, withMax)
			if rechecks >= pairs {
				t.Errorf("dim %d withMax=%v: %d/%d re-checked — no pruning at all", dim, withMax, rechecks, pairs)
			}

			// Cross pass continuing from the argmin state, as Basic-DDP does.
			nLocal := n / 2
			want2 := NewDeltaAcc(n, withMax)
			DeltaArgmin(m, 0, nLocal, want2)
			DeltaCross(m, nLocal, n, 0, nLocal, want2)
			got2 := NewDeltaAcc(n, withMax)
			band.Reset(got2, F32Bounds(dim, c.MaxAbs()))
			DeltaArgmin32(m, c, 0, nLocal, got2, &band)
			DeltaCross32(m, c, nLocal, n, 0, nLocal, got2, &band)
			compareDeltaAccs(t, "argmin+cross", want2, got2, dim, withMax)
			points.PutMatrix32(c)
		}
	}
}

func compareDeltaAccs(t *testing.T, tag string, want, got *DeltaAcc, dim int, withMax bool) {
	t.Helper()
	for i := range want.Best2 {
		if got.Best2[i] != want.Best2[i] || got.Up[i] != want.Up[i] {
			t.Fatalf("%s dim=%d withMax=%v row %d: (%v, %d) != (%v, %d)",
				tag, dim, withMax, i, got.Best2[i], got.Up[i], want.Best2[i], want.Up[i])
		}
		if withMax && got.Max2[i] != want.Max2[i] {
			t.Fatalf("%s dim=%d row %d: Max2 %v != %v", tag, dim, i, got.Max2[i], want.Max2[i])
		}
	}
}

func TestBoundsContract(t *testing.T) {
	// Directly verify the Bounds inequality on random pairs, including
	// nasty magnitudes.
	rng := rand.New(rand.NewSource(31))
	for _, dim := range []int{1, 4, 16} {
		for _, scale := range []float64{1, 1e30, 1e-30} {
			bnd := F32Bounds(dim, scale*10)
			if !bnd.Valid() {
				t.Fatalf("bounds invalid at dim %d scale %g", dim, scale)
			}
			for trial := 0; trial < 2000; trial++ {
				a := make([]float64, dim)
				b := make([]float64, dim)
				for d := 0; d < dim; d++ {
					a[d] = rng.NormFloat64() * scale
					b[d] = a[d]
					if rng.Intn(3) > 0 {
						b[d] = rng.NormFloat64() * scale
					}
				}
				a32, _ := points.ToFloat32(a)
				b32, _ := points.ToFloat32(b)
				s64 := math.Sqrt(sqDistFlat(a, b, dim))
				s32 := math.Sqrt(float64(sqDist32(a32, b32, dim)))
				if math.IsInf(s32, 0) || math.IsNaN(s32) {
					// The contract covers finite compact distances only;
					// every kernel routes non-finite ones to the exact path.
					continue
				}
				lim := bnd.Rel*s64 + bnd.Abs
				if math.Abs(s32-s64) > lim {
					t.Fatalf("dim %d scale %g: |%g - %g| > %g", dim, scale, s32, s64, lim)
				}
			}
		}
	}
}

func TestValidScanPrecision(t *testing.T) {
	for _, s := range []string{"", ScanF64, ScanF32} {
		if !ValidScanPrecision(s) {
			t.Fatalf("%q rejected", s)
		}
	}
	for _, s := range []string{ScanQ8, "f16", "junk"} {
		if ValidScanPrecision(s) {
			t.Fatalf("%q accepted", s)
		}
	}
}
