package kernels

// Compact (float32) top-k scan kernels with exact float64 re-rank,
// extending the single-NN compact path of compact.go to k neighbors. The
// scan streams the float32 mirror and collects every row that could belong
// to the true top-k under the Bounds contract; the caller re-ranks the
// surviving rows with the exact TopKRows, so the final (row, distance) set
// — including the lowest-row-index tie rule — is bit-identical to a pure
// float64 TopKRange.
//
// Soundness: the shortlist tracks the k smallest finite compact distances
// seen in a size-k max-heap. Whenever the heap is full with root h, there
// exist k observed rows with compact squared distance ≤ h, so by the
// Bounds contract there are k rows whose exact distance is at most
// u = (√h + Abs)/(1 − Rel) — hence the true k-th exact distance is ≤ u,
// and every row of the true top-k (or tied with its boundary) has compact
// squared distance ≤ KeepThresh(h) = (u·(1+Rel) + Abs)². Rows are only
// dropped when strictly above that threshold, and the threshold only
// tightens as the heap improves, so no true top-k row is ever discarded.
// As in compact.go, a NaN compact distance is admitted and never tightens
// the threshold, and a +Inf compact distance never enters the heap, so
// overflow degrades to a larger re-rank, never a wrong answer.

// TopKShortlist collects candidate rows during a compact top-k scan. Reset
// it with the query's k and the scan's Bounds, feed it via the compact
// top-k kernels, then Finish and re-rank the surviving rows with TopKRows
// over the float64 data.
type TopKShortlist struct {
	Rows  []int32
	d2    []float32
	k     int
	heap  []float64 // max-heap of the k smallest finite compact distances
	thr   float64
	bnd   Bounds
	limit int
}

// Reset prepares the shortlist for one scan keeping storage; k must be at
// least 1.
func (sl *TopKShortlist) Reset(k int, bnd Bounds) {
	if k < 1 {
		panic("kernels: TopKShortlist needs k >= 1")
	}
	sl.Rows = sl.Rows[:0]
	sl.d2 = sl.d2[:0]
	sl.k = k
	sl.heap = sl.heap[:0]
	sl.thr = inf
	sl.bnd = bnd
	sl.limit = shortlistCompactAt
	// The list legitimately holds k rows at all times; keep the compaction
	// trigger clear of that floor so large k cannot thrash refilter.
	if sl.limit < 2*k {
		sl.limit = 2 * k
	}
}

// observe folds one scanned row into the shortlist. Comparisons are
// arranged so a NaN compact distance is admitted and never enters the
// heap, and a +Inf compact distance (admissible only while the threshold
// is still +Inf) likewise stays out of the heap.
func (sl *TopKShortlist) observe(row int32, d32 float32) {
	df := float64(d32)
	if df > sl.thr {
		return
	}
	sl.Rows = append(sl.Rows, row)
	sl.d2 = append(sl.d2, d32)
	if df < inf {
		if len(sl.heap) < sl.k {
			sl.heap = append(sl.heap, df)
			for i := len(sl.heap) - 1; i > 0; {
				p := (i - 1) / 2
				if sl.heap[p] >= sl.heap[i] {
					break
				}
				sl.heap[p], sl.heap[i] = sl.heap[i], sl.heap[p]
				i = p
			}
			if len(sl.heap) == sl.k {
				sl.thr = sl.bnd.KeepThresh(sl.heap[0])
			}
		} else if df < sl.heap[0] {
			sl.heap[0] = df
			sl.heapDown()
			sl.thr = sl.bnd.KeepThresh(sl.heap[0])
		}
	}
	if len(sl.Rows) >= sl.limit {
		sl.refilter()
		if 2*len(sl.Rows) > sl.limit {
			sl.limit = 2 * len(sl.Rows)
		}
	}
}

func (sl *TopKShortlist) heapDown() {
	n := len(sl.heap)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && sl.heap[r] > sl.heap[c] {
			c = r
		}
		if sl.heap[c] <= sl.heap[i] {
			return
		}
		sl.heap[i], sl.heap[c] = sl.heap[c], sl.heap[i]
		i = c
	}
}

// refilter drops rows excluded by the current threshold (NaN survives).
func (sl *TopKShortlist) refilter() {
	w := 0
	for i, r := range sl.Rows {
		if !(float64(sl.d2[i]) > sl.thr) {
			sl.Rows[w] = r
			sl.d2[w] = sl.d2[i]
			w++
		}
	}
	sl.Rows = sl.Rows[:w]
	sl.d2 = sl.d2[:w]
}

// Finish applies the final threshold and returns the surviving rows, each
// listed at most once. The slice aliases the shortlist and is invalidated
// by the next Reset.
func (sl *TopKShortlist) Finish() []int32 {
	sl.refilter()
	return sl.Rows
}

// TopKRange32 scans rows [lo, hi) of the float32 mirror into the shortlist
// (Reset by the caller with this query's k and the scan's Bounds). The
// admission reject is hoisted as in NNRange32; NaN fails the rejection test
// and reaches observe, as required.
func TopKRange32(data32 []float32, dim int, q32 []float32, lo, hi int, sl *TopKShortlist) {
	thr := sl.thr
	for i := lo; i < hi; i++ {
		d2 := sqDist32(q32, data32[i*dim:(i+1)*dim], dim)
		if float64(d2) > thr {
			continue
		}
		sl.observe(int32(i), d2)
		thr = sl.thr
	}
}

// TopKRows32 scans the listed rows of the float32 mirror into the
// shortlist. Rows must be distinct (see TopKRows).
func TopKRows32(data32 []float32, dim int, q32 []float32, rows []int32, sl *TopKShortlist) {
	thr := sl.thr
	for _, r := range rows {
		i := int(r)
		d2 := sqDist32(q32, data32[i*dim:(i+1)*dim], dim)
		if float64(d2) > thr {
			continue
		}
		sl.observe(r, d2)
		thr = sl.thr
	}
}

// TopKBatch32 is the multi-query variant of TopKRange32: one pass over
// each row tile of the float32 mirror feeds every query's shortlist
// (qs32 flat, len(sls)*dim; each shortlist Reset by the caller).
func TopKBatch32(data32 []float32, dim int, qs32 []float32, lo, hi int, sls []TopKShortlist) {
	batchTiles(lo, hi, len(sls), func(qi, tLo, tHi int) {
		TopKRange32(data32, dim, qs32[qi*dim:(qi+1)*dim], tLo, tHi, &sls[qi])
	})
}
