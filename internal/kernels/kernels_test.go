package kernels

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dp"
	"repro/internal/points"
)

// The tests in this file pin the package's central guarantee: the blocked
// kernels perform the same floating-point work in the same per-accumulator
// order as the naive reference loops they replaced, so their outputs are
// bit-identical — across dimensions, kernels, chunkings (including
// MaxPartition-style chunk lists), and uneven tile remainders.

// randMatrix builds a RhoPoint matrix of n rows in dim dimensions through
// the wire codec, the same way a reducer receives it. Densities are drawn
// from a small integer range so ties exercise the ID tie-break rule.
func randMatrix(t testing.TB, n, dim int, seed int64) *points.Matrix {
	t.Helper()
	rng := points.NewRand(seed)
	values := make([][]byte, n)
	for i := 0; i < n; i++ {
		pos := make(points.Vector, dim)
		for j := range pos {
			pos[j] = rng.NormFloat64() * 5
		}
		values[i] = points.EncodeRhoPoint(points.RhoPoint{
			Point: points.Point{ID: int32(n - i), Pos: pos}, // non-dense IDs on purpose
			Rho:   float64(rng.Intn(4)),
		})
	}
	m := new(points.Matrix)
	if err := points.DecodeRhoPointsInto(m, values); err != nil {
		t.Fatal(err)
	}
	return m
}

// naiveRho is the pre-kernel reducer loop of core/lshddp.go and
// core/basic.go's diagonal pass.
func naiveRho(m *points.Matrix, lo, hi int, k Kernel, rho []float64) int64 {
	var nd int64
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			nd++
			if w := k.Weight(points.SqDist(m.Row(i), m.Row(j))); w != 0 {
				rho[i] += w
				rho[j] += w
			}
		}
	}
	return nd
}

// naiveRhoCross is core/basic.go's visitor-vs-local pass (a outer, b
// inner); with both=false it is eddpc's home-only counting.
func naiveRhoCross(m *points.Matrix, aLo, aHi, bLo, bHi int, k Kernel, rho []float64, both bool) int64 {
	var nd int64
	for a := aLo; a < aHi; a++ {
		for b := bLo; b < bHi; b++ {
			nd++
			if w := k.Weight(points.SqDist(m.Row(a), m.Row(b))); w != 0 {
				rho[a] += w
				if both {
					rho[b] += w
				}
			}
		}
	}
	return nd
}

// naiveDelta is the pre-kernel δ reducer loop (strict-<, first candidate
// wins ties), with optional fallback-max tracking as in basic.go.
func naiveDelta(m *points.Matrix, lo, hi int, acc *DeltaAcc) int64 {
	var nd int64
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			d2 := points.SqDist(m.Row(i), m.Row(j))
			nd++
			naiveObserve(m, acc, i, j, d2)
		}
	}
	return nd
}

func naiveDeltaCross(m *points.Matrix, aLo, aHi, bLo, bHi int, acc *DeltaAcc) int64 {
	var nd int64
	for a := aLo; a < aHi; a++ {
		for b := bLo; b < bHi; b++ {
			d2 := points.SqDist(m.Row(a), m.Row(b))
			nd++
			naiveObserve(m, acc, a, b, d2)
		}
	}
	return nd
}

func naiveObserve(m *points.Matrix, acc *DeltaAcc, i, j int, d2 float64) {
	if acc.Max2 != nil {
		if d2 > acc.Max2[i] {
			acc.Max2[i] = d2
		}
		if d2 > acc.Max2[j] {
			acc.Max2[j] = d2
		}
	}
	if dp.DenserVals(m.Rho(j), m.Rho(i), m.ID(j), m.ID(i)) {
		if d2 < acc.Best2[i] {
			acc.Best2[i] = d2
			acc.Up[i] = int32(j)
		}
	} else if d2 < acc.Best2[j] {
		acc.Best2[j] = d2
		acc.Up[j] = int32(i)
	}
}

// chunkings returns representative [lo,hi) chunk lists over n rows: the
// whole range, and MaxPartition-style contiguous caps that leave uneven
// remainders around tile boundaries.
func chunkings(n int) [][][2]int {
	whole := [][2]int{{0, n}}
	out := [][][2]int{whole}
	for _, cap := range []int{tile - 1, tile + 37, 2*tile + 5} {
		if cap >= n {
			continue
		}
		var ch [][2]int
		for lo := 0; lo < n; lo += cap {
			ch = append(ch, [2]int{lo, minInt(lo+cap, n)})
		}
		out = append(out, ch)
	}
	return out
}

func kernelsUnderTest(dc2 float64) []Kernel {
	return []Kernel{
		{Gaussian: false, Dc2: dc2},
		{Gaussian: true, Dc2: dc2},
	}
}

func TestRhoAccumulateBitIdentical(t *testing.T) {
	for dim := 2; dim <= 8; dim++ {
		for _, n := range []int{1, 2, 5, tile, tile + 1, 3*tile + 17} {
			m := randMatrix(t, n, dim, int64(dim*1000+n))
			for ki, k := range kernelsUnderTest(4.0) {
				for ci, chunks := range chunkings(n) {
					want := make([]float64, n)
					got := make([]float64, n)
					var ndWant, ndGot int64
					for _, ch := range chunks {
						ndWant += naiveRho(m, ch[0], ch[1], k, want)
						ndGot += RhoAccumulate(m, ch[0], ch[1], k, got)
					}
					if ndWant != ndGot {
						t.Fatalf("dim=%d n=%d k=%d chunks=%d: nd %d != %d", dim, n, ki, ci, ndGot, ndWant)
					}
					assertBitsEqual(t, fmt.Sprintf("rho dim=%d n=%d k=%d chunks=%d", dim, n, ki, ci), got, want)
				}
			}
		}
	}
}

func TestRhoCrossBitIdentical(t *testing.T) {
	for dim := 2; dim <= 8; dim++ {
		n := 2*tile + 31
		split := tile + 7 // rows [0,split) are "B/local", [split,n) are "A/visitors"
		m := randMatrix(t, n, dim, int64(dim*77+1))
		for ki, k := range kernelsUnderTest(3.0) {
			for _, both := range []bool{true, false} {
				want := make([]float64, n)
				got := make([]float64, n)
				ndWant := naiveRhoCross(m, split, n, 0, split, k, want, both)
				ndGot := RhoCross(m, split, n, 0, split, k, got, both)
				if ndWant != ndGot {
					t.Fatalf("dim=%d k=%d both=%v: nd %d != %d", dim, ki, both, ndGot, ndWant)
				}
				assertBitsEqual(t, fmt.Sprintf("rhoCross dim=%d k=%d both=%v", dim, ki, both), got, want)
			}
		}
	}
}

func TestDeltaArgminBitIdentical(t *testing.T) {
	for dim := 2; dim <= 8; dim++ {
		for _, n := range []int{1, 2, 5, tile, tile + 1, 3*tile + 17} {
			m := randMatrix(t, n, dim, int64(dim*31+n))
			for _, withMax := range []bool{false, true} {
				for ci, chunks := range chunkings(n) {
					want := NewDeltaAcc(n, withMax)
					got := NewDeltaAcc(n, withMax)
					for _, ch := range chunks {
						naiveDelta(m, ch[0], ch[1], want)
						DeltaArgmin(m, ch[0], ch[1], got)
					}
					assertDeltaEqual(t, fmt.Sprintf("delta dim=%d n=%d max=%v chunks=%d", dim, n, withMax, ci), got, want)
				}
			}
		}
	}
}

func TestDeltaCrossBitIdentical(t *testing.T) {
	for dim := 2; dim <= 8; dim++ {
		n := 2*tile + 9
		split := tile - 3
		m := randMatrix(t, n, dim, int64(dim*13+5))
		// Basic-DDP shape: diagonal pass over local rows, then cross pass
		// visitors × local, both through one accumulator.
		want := NewDeltaAcc(n, true)
		got := NewDeltaAcc(n, true)
		naiveDelta(m, 0, split, want)
		naiveDeltaCross(m, split, n, 0, split, want)
		DeltaArgmin(m, 0, split, got)
		DeltaCross(m, split, n, 0, split, got)
		assertDeltaEqual(t, fmt.Sprintf("deltaCross dim=%d", dim), got, want)
	}
}

// TestDeltaTieBreak pins the first-wins rule on exactly equal distances:
// two equidistant denser rows must resolve to the earlier row.
func TestDeltaTieBreak(t *testing.T) {
	values := [][]byte{
		points.EncodeRhoPoint(points.RhoPoint{Point: points.Point{ID: 10, Pos: points.Vector{0, 0}}, Rho: 1}),
		points.EncodeRhoPoint(points.RhoPoint{Point: points.Point{ID: 11, Pos: points.Vector{1, 0}}, Rho: 5}),
		points.EncodeRhoPoint(points.RhoPoint{Point: points.Point{ID: 12, Pos: points.Vector{-1, 0}}, Rho: 5}),
	}
	m := new(points.Matrix)
	if err := points.DecodeRhoPointsInto(m, values); err != nil {
		t.Fatal(err)
	}
	acc := NewDeltaAcc(3, false)
	DeltaArgmin(m, 0, 3, acc)
	if acc.Up[0] != 1 {
		t.Fatalf("tie resolved to row %d, want first-seen row 1", acc.Up[0])
	}
	par := NewDeltaAcc(3, false)
	DeltaArgminAuto(m, 0, 3, par, Parallel{Threshold: 1, Workers: 4})
	if par.Up[0] != 1 {
		t.Fatalf("parallel tie resolved to row %d, want row 1", par.Up[0])
	}
}

// TestParallelMatchesSerial runs the Auto kernels with the pool engaged
// (this is also the -race test for the intra-partition parallel path).
func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{tile + 3, 5*tile + 41, 1200} {
		for dim := 2; dim <= 4; dim++ {
			m := randMatrix(t, n, dim, int64(n*10+dim))
			p := Parallel{Threshold: 64, Workers: 4}

			// Cutoff ρ: exact under any merge order (integer sums).
			k := Kernel{Dc2: 6.0}
			serial := make([]float64, n)
			RhoAccumulate(m, 0, n, k, serial)
			par := make([]float64, n)
			if nd := RhoAccumulateAuto(m, 0, n, k, par, p); nd != int64(n)*int64(n-1)/2 {
				t.Fatalf("parallel rho nd = %d", nd)
			}
			assertBitsEqual(t, fmt.Sprintf("parallel cutoff rho n=%d dim=%d", n, dim), par, serial)

			// Gaussian ρ: merge order may shift the last ulps; bound it.
			kg := Kernel{Gaussian: true, Dc2: 6.0}
			serialG := make([]float64, n)
			RhoAccumulate(m, 0, n, kg, serialG)
			parG := make([]float64, n)
			RhoAccumulateAuto(m, 0, n, kg, parG, p)
			for i := range serialG {
				if diff := math.Abs(parG[i] - serialG[i]); diff > 1e-9*(1+math.Abs(serialG[i])) {
					t.Fatalf("gaussian rho[%d]: parallel %v vs serial %v", i, parG[i], serialG[i])
				}
			}

			// δ-argmin: bit-identical by the lexicographic merge.
			serialD := NewDeltaAcc(n, true)
			DeltaArgmin(m, 0, n, serialD)
			parD := NewDeltaAcc(n, true)
			DeltaArgminAuto(m, 0, n, parD, p)
			assertDeltaEqual(t, fmt.Sprintf("parallel delta n=%d dim=%d", n, dim), parD, serialD)

			// Determinism: a second parallel run is bit-identical.
			par2 := make([]float64, n)
			RhoAccumulateAuto(m, 0, n, kg, par2, p)
			assertBitsEqual(t, "parallel gaussian determinism", par2, parG)
		}
	}
}

// TestParallelChunkCarry checks the parallel δ merge against accumulator
// state carried in from an earlier chunk, as the MaxPartition path does.
func TestParallelChunkCarry(t *testing.T) {
	n := 4 * tile
	m := randMatrix(t, n, 2, 99)
	mid := 2*tile + 11
	want := NewDeltaAcc(n, false)
	naiveDelta(m, 0, mid, want)
	naiveDelta(m, mid, n, want)
	got := NewDeltaAcc(n, false)
	p := Parallel{Threshold: 32, Workers: 3}
	DeltaArgminAuto(m, 0, mid, got, p)
	DeltaArgminAuto(m, mid, n, got, p)
	assertDeltaEqual(t, "chunk carry", got, want)
}

func assertBitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v (%x), want %v (%x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func assertDeltaEqual(t *testing.T, what string, got, want *DeltaAcc) {
	t.Helper()
	assertBitsEqual(t, what+" best2", got.Best2, want.Best2)
	for i := range want.Up {
		if got.Up[i] != want.Up[i] {
			t.Fatalf("%s: up[%d] = %d, want %d", what, i, got.Up[i], want.Up[i])
		}
	}
	if want.Max2 != nil {
		assertBitsEqual(t, what+" max2", got.Max2, want.Max2)
	}
}
