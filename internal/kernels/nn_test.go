package kernels

import (
	"math"
	"testing"

	"repro/internal/points"
)

// naiveNN is the reference: first row in ascending order wins ties.
func naiveNN(data []float64, dim int, q []float64, rows []int32) (int, float64) {
	best, best2 := -1, math.Inf(1)
	for _, r := range rows {
		i := int(r)
		var d2 float64
		for j := 0; j < dim; j++ {
			d := q[j] - data[i*dim+j]
			d2 += d * d
		}
		if d2 < best2 {
			best, best2 = i, d2
		}
	}
	return best, best2
}

func TestNNAgainstNaive(t *testing.T) {
	rng := points.NewRand(5)
	for _, dim := range []int{2, 3, 7} { // dim 2 exercises the fast path
		n := 200
		data := make([]float64, n*dim)
		for i := range data {
			data[i] = rng.Float64() * 10
		}
		allRows := make([]int32, n)
		for i := range allRows {
			allRows[i] = int32(i)
		}
		for trial := 0; trial < 50; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64() * 10
			}
			wantI, want2 := naiveNN(data, dim, q, allRows)
			if gotI, got2 := NNRange(data, dim, q, 0, n); gotI != wantI || got2 != want2 {
				t.Fatalf("dim %d: NNRange = (%d, %v), want (%d, %v)", dim, gotI, got2, wantI, want2)
			}
			// A strided subset, still ascending.
			var rows []int32
			for i := trial % 3; i < n; i += 3 {
				rows = append(rows, int32(i))
			}
			wantI, want2 = naiveNN(data, dim, q, rows)
			if gotI, got2 := NNRows(data, dim, q, rows); gotI != wantI || got2 != want2 {
				t.Fatalf("dim %d: NNRows = (%d, %v), want (%d, %v)", dim, gotI, got2, wantI, want2)
			}
		}
	}
}

// Ties break to the lowest row index on both paths.
func TestNNTieRule(t *testing.T) {
	data := []float64{1, 1, 5, 5, 1, 1} // rows 0 and 2 identical
	q := []float64{1, 2}
	if i, _ := NNRange(data, 2, q, 0, 3); i != 0 {
		t.Fatalf("NNRange tie chose row %d, want 0", i)
	}
	// Order must not matter: the index tie-break picks row 0 even when it
	// is visited last.
	if i, _ := NNRows(data, 2, q, []int32{2, 1, 0}); i != 0 {
		t.Fatalf("NNRows tie chose row %d, want 0", i)
	}
}

func TestNNEmpty(t *testing.T) {
	if i, d2 := NNRange(nil, 2, []float64{0, 0}, 0, 0); i != -1 || !math.IsInf(d2, 1) {
		t.Fatalf("empty NNRange = (%d, %v)", i, d2)
	}
	if i, d2 := NNRows(nil, 2, []float64{0, 0}, nil); i != -1 || !math.IsInf(d2, 1) {
		t.Fatalf("empty NNRows = (%d, %v)", i, d2)
	}
}
