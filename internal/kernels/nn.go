package kernels

// Nearest-neighbor scan kernels for the online serving path: given a query
// position and the flat SoA coordinate block of a cluster model, find the
// closest stored row. The serving engine calls NNRows over the LSH
// candidate union of a query (usually a few hundred rows) and NNRange as
// the exact full-scan fallback; both share the tie rule "lowest row index
// wins", so a pruned scan that happens to contain the true nearest row
// returns exactly what the exact scan would. NNRows enforces the rule with
// an explicit index comparison on equal distances, so callers need not
// sort the candidate list — sorting it would cost more than the scan.

// NNRange scans rows [lo, hi) of the flat row-major block data (rows of
// length dim) and returns the row index nearest to q plus the squared
// distance. Returns (-1, +Inf) on an empty range.
func NNRange(data []float64, dim int, q []float64, lo, hi int) (int, float64) {
	return nnScanRange(data, dim, q, lo, hi, -1, inf)
}

// nnScanRange extends a running (best, best2) with rows [lo, hi) — the one
// scan loop behind NNRange and NNBatch, so the single- and multi-query
// paths cannot drift. Rows are visited in ascending order; a row wins only
// on a strictly smaller distance, preserving the lowest-row-index tie rule
// across any tiling of the range.
func nnScanRange(data []float64, dim int, q []float64, lo, hi, best int, best2 float64) (int, float64) {
	if dim == 2 {
		qx, qy := q[0], q[1]
		for i := lo; i < hi; i++ {
			d0 := qx - data[2*i]
			d1 := qy - data[2*i+1]
			d2 := d0 * d0
			d2 += d1 * d1
			if d2 < best2 {
				best, best2 = i, d2
			}
		}
		return best, best2
	}
	for i := lo; i < hi; i++ {
		d2 := sqDistFlat(q, data[i*dim:(i+1)*dim], dim)
		if d2 < best2 {
			best, best2 = i, d2
		}
	}
	return best, best2
}

// NNRows scans only the listed rows (any order, duplicates allowed) and
// returns the nearest row index plus the squared distance; equal distances
// resolve to the lowest row index, matching NNRange's ascending scan.
// Returns (-1, +Inf) when rows is empty.
func NNRows(data []float64, dim int, q []float64, rows []int32) (int, float64) {
	best, best2 := -1, inf
	if dim == 2 {
		qx, qy := q[0], q[1]
		for _, r := range rows {
			d0 := qx - data[2*r]
			d1 := qy - data[2*r+1]
			d2 := d0 * d0
			d2 += d1 * d1
			if d2 < best2 || (d2 == best2 && int(r) < best) {
				best, best2 = int(r), d2
			}
		}
		return best, best2
	}
	for _, r := range rows {
		i := int(r)
		d2 := sqDistFlat(q, data[i*dim:(i+1)*dim], dim)
		if d2 < best2 || (d2 == best2 && i < best) {
			best, best2 = i, d2
		}
	}
	return best, best2
}
