package kernels

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/points"
)

// Property tests for the top-k scan kernels. The contract under test: the
// kept set equals the sort-based oracle — finite distances sorted by
// (squared distance, row index), first k — regardless of observation order,
// tiling, or chunking; and the compact f32 scan plus exact re-rank is
// bit-identical to the pure float64 kernel.

// naiveTopK is the sort-based oracle over the listed rows.
func naiveTopK(data []float64, dim int, q []float64, rows []int32, k int) []TopKEntry {
	var all []TopKEntry
	for _, r := range rows {
		i := int(r)
		var d2 float64
		for j := 0; j < dim; j++ {
			d := q[j] - data[i*dim+j]
			d2 += d * d
		}
		if d2 < math.Inf(1) {
			all = append(all, TopKEntry{Row: r, D2: d2})
		}
	}
	for a := 1; a < len(all); a++ { // insertion sort: no ordering subtleties
		for b := a; b > 0 && topkWorse(all[b-1], all[b]); b-- {
			all[b-1], all[b] = all[b], all[b-1]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func randQuery(rng *rand.Rand, dim int) []float64 {
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.NormFloat64() * 10
	}
	return q
}

func TestTopKAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{2, 3, 7} { // dim 2 exercises the unrolled path
		n := 180
		data := randBlock(rng, n, dim, 10) // plants duplicates and near ties
		allRows := make([]int32, n)
		for i := range allRows {
			allRows[i] = int32(i)
		}
		acc := NewTopKAcc(1)
		for _, k := range []int{1, 3, 10, n, n + 17} {
			for trial := 0; trial < 20; trial++ {
				q := randQuery(rng, dim)
				want := naiveTopK(data, dim, q, allRows, k)

				acc.Reset(k)
				TopKRange(data, dim, q, 0, n, acc)
				if got := acc.Append(nil); !reflect.DeepEqual(got, want) {
					t.Fatalf("dim %d k %d: TopKRange = %v, want %v", dim, k, got, want)
				}

				// A strided subset, visited in descending order: the kept
				// set must not depend on observation order.
				var rows []int32
				for i := n - 1 - trial%3; i >= 0; i -= 3 {
					rows = append(rows, int32(i))
				}
				acc.Reset(k)
				TopKRows(data, dim, q, rows, acc)
				if got := acc.Append(nil); !reflect.DeepEqual(got, naiveTopK(data, dim, q, rows, k)) {
					t.Fatalf("dim %d k %d: TopKRows mismatch on strided subset", dim, k)
				}
			}
		}
	}
}

// Any chunking of the scan range, and the tiled batch kernel, must land in
// a bit-identical final state.
func TestTopKChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dim, n, k := 3, 300, 8
	data := randBlock(rng, n, dim, 5)
	nq := 7
	qs := make([]float64, nq*dim)
	for i := range qs {
		qs[i] = rng.NormFloat64() * 5
	}
	for qi := 0; qi < nq; qi++ {
		q := qs[qi*dim : (qi+1)*dim]
		flat := NewTopKAcc(k)
		TopKRange(data, dim, q, 0, n, flat)
		want := flat.Append(nil)
		for _, chunk := range []int{1, 7, nnTile - 1, nnTile, n} {
			acc := NewTopKAcc(k)
			for lo := 0; lo < n; lo += chunk {
				TopKRange(data, dim, q, lo, minInt(lo+chunk, n), acc)
			}
			if got := acc.Append(nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d chunk %d: chunked scan diverged", qi, chunk)
			}
		}
	}
	accs := make([]TopKAcc, nq)
	for i := range accs {
		accs[i].Reset(k)
	}
	TopKBatch(data, dim, qs, 0, n, accs)
	for qi := range accs {
		flat := NewTopKAcc(k)
		TopKRange(data, dim, qs[qi*dim:(qi+1)*dim], 0, n, flat)
		if got, want := accs[qi].Append(nil), flat.Append(nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: TopKBatch diverged from TopKRange", qi)
		}
	}
}

// Rows with non-finite distances (+Inf overflow, NaN from Inf−Inf) are
// ineligible, matching the NN kernels' "no finite distance" contract.
func TestTopKNonFiniteRows(t *testing.T) {
	dim, k := 2, 3
	data := []float64{
		0, 0, // row 0: finite
		math.Inf(1), 0, // row 1: d2 = +Inf
		math.Inf(1), math.Inf(1), // row 2: NaN vs an infinite query coord
		1, 1, // row 3: finite
	}
	acc := NewTopKAcc(k)
	TopKRange(data, dim, []float64{0, 1}, 0, 4, acc)
	got := acc.Append(nil)
	want := naiveTopK(data, dim, []float64{0, 1}, []int32{0, 1, 2, 3}, k)
	if !reflect.DeepEqual(got, want) || len(got) != 2 {
		t.Fatalf("mixed non-finite rows: got %v, want %v (len 2)", got, want)
	}
	// Query at +Inf: every distance is +Inf or NaN, nothing is kept.
	acc.Reset(k)
	TopKRange(data, dim, []float64{math.Inf(1), 0}, 0, 4, acc)
	if acc.Len() != 0 {
		t.Fatalf("all-overflow scan kept %d rows, want 0", acc.Len())
	}
	if thr := acc.Threshold(); !math.IsInf(thr, 1) {
		t.Fatalf("empty accumulator threshold = %v, want +Inf", thr)
	}
}

// Top-1 must agree exactly with the single-NN kernel.
func TestTopKMatchesNNAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dim := range []int{2, 5} {
		n := 150
		data := randBlock(rng, n, dim, 3)
		for trial := 0; trial < 30; trial++ {
			q := randQuery(rng, dim)
			bi, b2 := NNRange(data, dim, q, 0, n)
			acc := NewTopKAcc(1)
			TopKRange(data, dim, q, 0, n, acc)
			got := acc.Append(nil)
			if len(got) != 1 || int(got[0].Row) != bi || got[0].D2 != b2 {
				t.Fatalf("dim %d: top-1 %v, want (%d, %v)", dim, got, bi, b2)
			}
		}
	}
}

// The f32 shortlist scan plus exact re-rank is bit-identical to the pure
// float64 top-k, at a benign scale and at a scale whose squared distances
// overflow float32 (compact distances +Inf → full exact re-rank).
func TestTopK32Rerank(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, scale := range []float64{4, 1e25} {
		for _, dim := range []int{2, 3, 7} {
			n := 220
			data := randBlock(rng, n, dim, scale)
			data32, _ := points.ToFloat32(data)
			for _, k := range []int{1, 5, 16} {
				for trial := 0; trial < 12; trial++ {
					q := randQuery(rng, dim)
					for j := range q {
						q[j] *= scale / 4
					}
					bnd := F32Bounds(dim, blockMaxAbs(data, q))
					q32, _ := points.ToFloat32(q)
					var sl TopKShortlist
					sl.Reset(k, bnd)
					TopKRange32(data32, dim, q32, 0, n, &sl)
					acc := NewTopKAcc(k)
					TopKRows(data, dim, q, sl.Finish(), acc)
					got := acc.Append(nil)

					ref := NewTopKAcc(k)
					TopKRange(data, dim, q, 0, n, ref)
					if want := ref.Append(nil); !reflect.DeepEqual(got, want) {
						t.Fatalf("scale %g dim %d k %d: rerank %v, want %v", scale, dim, k, got, want)
					}
				}
			}
		}
	}
}

// The batched f32 kernel must leave every shortlist in the same state as
// its single-query counterpart, and TopKRows32 must honor the running
// threshold like TopKRange32 does.
func TestTopK32BatchAndRows(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dim, n, k, nq := 3, 260, 6, 5
	data := randBlock(rng, n, dim, 8)
	data32, _ := points.ToFloat32(data)
	qs := make([]float64, nq*dim)
	for i := range qs {
		qs[i] = rng.NormFloat64() * 8
	}
	qs32, _ := points.ToFloat32(qs)
	bnd := F32Bounds(dim, blockMaxAbs(data, qs))

	sls := make([]TopKShortlist, nq)
	for i := range sls {
		sls[i].Reset(k, bnd)
	}
	TopKBatch32(data32, dim, qs32, 0, n, sls)

	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	for qi := 0; qi < nq; qi++ {
		q, q32 := qs[qi*dim:(qi+1)*dim], qs32[qi*dim:(qi+1)*dim]
		var flat, byRows TopKShortlist
		flat.Reset(k, bnd)
		TopKRange32(data32, dim, q32, 0, n, &flat)
		byRows.Reset(k, bnd)
		TopKRows32(data32, dim, q32, rows, &byRows)

		ref := NewTopKAcc(k)
		TopKRange(data, dim, q, 0, n, ref)
		want := ref.Append(nil)
		for name, sl := range map[string]*TopKShortlist{"batch": &sls[qi], "range": &flat, "rows": &byRows} {
			acc := NewTopKAcc(k)
			TopKRows(data, dim, q, sl.Finish(), acc)
			if got := acc.Append(nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d via %s: %v, want %v", qi, name, got, want)
			}
		}
	}
}

// Mass ties beyond the compaction limit: many rows at exactly the same
// distance must force shortlist growth without losing the true top-k.
func TestTopK32MassTies(t *testing.T) {
	dim, k := 2, 4
	n := 3 * shortlistCompactAt
	data := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		data[i*dim] = 3 // all rows identical → every distance ties
	}
	q := []float64{0, 0}
	data32, _ := points.ToFloat32(data)
	q32, _ := points.ToFloat32(q)
	bnd := F32Bounds(dim, 3)
	var sl TopKShortlist
	sl.Reset(k, bnd)
	TopKRange32(data32, dim, q32, 0, n, &sl)
	acc := NewTopKAcc(k)
	TopKRows(data, dim, q, sl.Finish(), acc)
	got := acc.Append(nil)
	ref := NewTopKAcc(k)
	TopKRange(data, dim, q, 0, n, ref)
	if want := ref.Append(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("mass ties: got %v, want %v", got, want)
	}
	for i, e := range got {
		if e.Row != int32(i) {
			t.Fatalf("mass ties kept row %d at rank %d, want lowest rows", e.Row, i)
		}
	}
}
