package kernels

import (
	"testing"

	"repro/internal/points"
)

// The benchmarks below carry the PR's headline numbers (BENCH_PR2.json):
// tiled kernels vs the naive reducer loops they replaced, the parallel path
// on a skew-sized group, and the matrix group decode vs per-record scalar
// decoding. Run with:
//
//	go test -bench 'Rho|Delta' -run xxx -benchmem ./internal/kernels/
//
// or `make bench` for pinned benchtime/count suitable for benchstat.

const (
	benchN   = 4096
	benchDim = 2
)

func benchKernel() Kernel { return Kernel{Dc2: 9.0} }

func BenchmarkRhoKernel(b *testing.B) {
	m := randMatrix(b, benchN, benchDim, 99)
	k := benchKernel()
	rho := make([]float64, benchN)

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(rho)
			naiveRho(m, 0, benchN, k, rho)
		}
	})
	b.Run("tiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(rho)
			RhoAccumulate(m, 0, benchN, k, rho)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		par := Parallel{Threshold: 1, Workers: 4}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(rho)
			RhoAccumulateAuto(m, 0, benchN, k, rho, par)
		}
	})
}

func BenchmarkRhoKernelGaussian(b *testing.B) {
	m := randMatrix(b, benchN, benchDim, 99)
	k := Kernel{Gaussian: true, Dc2: 9.0}
	rho := make([]float64, benchN)

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(rho)
			naiveRho(m, 0, benchN, k, rho)
		}
	})
	b.Run("tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(rho)
			RhoAccumulate(m, 0, benchN, k, rho)
		}
	})
}

func BenchmarkDeltaKernel(b *testing.B) {
	m := randMatrix(b, benchN, benchDim, 101)

	b.Run("naive", func(b *testing.B) {
		acc := NewDeltaAcc(benchN, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset(benchN, true)
			naiveDelta(m, 0, benchN, acc)
		}
	})
	b.Run("tiled", func(b *testing.B) {
		acc := NewDeltaAcc(benchN, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset(benchN, true)
			DeltaArgmin(m, 0, benchN, acc)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		par := Parallel{Threshold: 1, Workers: 4}
		acc := NewDeltaAcc(benchN, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset(benchN, true)
			DeltaArgminAuto(m, 0, benchN, acc, par)
		}
	})
}

// BenchmarkRhoGroupDecode measures the full reducer-group hot path — decode
// every wire record, then accumulate ρ — the way LSHRhoJob sees it. The
// scalar sub is the pre-PR shape (one RhoPoint + Vector allocation per
// record); the matrix sub batch-decodes into a pooled SoA matrix.
func BenchmarkRhoGroupDecode(b *testing.B) {
	const n = 512
	src := randMatrix(b, n, benchDim, 77)
	values := make([][]byte, n)
	for i := 0; i < n; i++ {
		values[i] = points.AppendRhoPoint(nil, points.RhoPoint{
			Point: points.Point{ID: src.ID(i), Pos: append(points.Vector(nil), src.Row(i)...)},
		})
	}
	k := benchKernel()

	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for it := 0; it < b.N; it++ {
			pts := make([]points.RhoPoint, 0, len(values))
			for _, v := range values {
				rp, _, err := points.DecodeRhoPoint(v)
				if err != nil {
					b.Fatal(err)
				}
				pts = append(pts, rp)
			}
			var nd int64
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					d2 := points.SqDist(pts[i].Pos, pts[j].Pos)
					nd++
					if w := k.Weight(d2); w != 0 {
						pts[i].Rho += w
						pts[j].Rho += w
					}
				}
			}
			_ = nd
		}
	})
	b.Run("matrix", func(b *testing.B) {
		rho := make([]float64, n)
		b.ReportAllocs()
		for it := 0; it < b.N; it++ {
			m := points.GetMatrix()
			if err := points.DecodeRhoPointsInto(m, values); err != nil {
				b.Fatal(err)
			}
			clear(rho)
			RhoAccumulate(m, 0, m.N(), k, rho)
			points.PutMatrix(m)
		}
	})
}
