package kernels

// Compact (float32 / 8-bit-quantized) NN scan kernels with exact float64
// re-rank. The scan streams a compact mirror of the coordinate block —
// half or an eighth of the float64 bytes — and collects a shortlist of
// every row that *could* be the true nearest neighbor under a sound error
// bound; the caller then re-ranks the shortlist with the exact float64
// kernels (NNRows), so the final result — index, squared distance, and the
// lowest-row-index tie rule — is bit-identical to a pure float64 scan.
//
// Soundness rests on one contract (Bounds): the compact squared distance
// d32 and the exact squared distance d64 of the same row pair satisfy
//
//	|sqrt(d32) − sqrt(d64)| ≤ Rel·sqrt(d64) + Abs
//
// with Rel/Abs chosen far above the worst-case rounding of the compact
// arithmetic (see F32Bounds/Q8Bounds). Every admission test is arranged so
// that a NaN or +Inf compact distance — coordinate overflow on conversion,
// underflow pile-ups, quantizer corner cases — fails toward "keep the row",
// so pathological inputs degrade to a full re-rank, never a wrong answer.

import (
	"math"

	"repro/internal/points"
)

// ConfScanPrecision is the Conf key selecting the reducer-side scan
// precision ("f64" default, or "f32" for the compact path with exact
// re-check). The serving daemon has its own knob (serve.scan.precision)
// which additionally accepts "q8".
const ConfScanPrecision = "mr.scan.precision"

// Scan precision values shared by the mr.* knob and the serving knob.
const (
	ScanF64 = "f64"
	ScanF32 = "f32"
	ScanQ8  = "q8"
)

// ValidScanPrecision reports whether s is a usable reducer-side precision.
// The empty string means "default" (f64). q8 is serving-only: reducer
// groups have no precomputed codebook, and building one per group would
// cost more than the scan it saves.
func ValidScanPrecision(s string) bool {
	switch s {
	case "", ScanF64, ScanF32:
		return true
	}
	return false
}

// Bounds is the error contract between a finite compact squared distance
// and its exact float64 counterpart:
// |sqrt(d32) − sqrt(d64)| ≤ Rel·sqrt(d64) + Abs. A non-finite compact
// distance (overflow to +Inf, NaN) carries no information and every kernel
// routes it to the exact path instead.
// All threshold helpers are sound for any Rel in [0, 1) and Abs ≥ 0; the
// constructors below build Rel/Abs with ≥8x margin over worst-case
// rounding, so the shortlists they gate stay tiny on real data.
type Bounds struct {
	Rel float64
	Abs float64
}

// F32Bounds bounds a float32 mirror scan: dim-dimensional rows whose
// float64 source coordinates are bounded by maxAbs in magnitude (both
// operands — use the larger of the block's and the query's maximum).
//
//   - Rel covers the relative rounding of dim float32 subtract/multiply/add
//     steps (worst case ~(dim+2)·2⁻²⁴ on the squared distance, i.e. half
//     that on the distance; (dim+6)·2⁻²⁰ is ≥16x margin).
//   - Abs covers coordinate conversion error (≤ maxAbs·2⁻²⁴ per coordinate,
//     so ≤ √dim·2·maxAbs·2⁻²⁴ on the distance; the 2⁻¹⁸ factor is 64x
//     margin) plus a √dim·2⁻⁵⁵ floor for float32 underflow: subnormal
//     squares carry absolute error up to ~2⁻¹²⁶ each, which perturbs the
//     distance by at most ~√dim·2⁻⁶³.
func F32Bounds(dim int, maxAbs float64) Bounds {
	sd := math.Sqrt(float64(dim))
	return Bounds{
		Rel: float64(dim+6) * 0x1p-20,
		Abs: sd * (maxAbs*0x1p-18 + 0x1p-55),
	}
}

// Q8Bounds bounds a quantized-code scan against a per-query lookup table
// built from the exact query (BuildQ8LUT): errBound is
// points.Q8Params.ErrBound(), already 2x the worst-case Euclidean
// displacement between a stored row and its dequantized form. Rel covers
// the float32 rounding of the table entries and their summation; the floor
// covers underflow as in F32Bounds.
func Q8Bounds(dim int, errBound float64) Bounds {
	return Bounds{
		Rel: float64(dim+6) * 0x1p-20,
		Abs: errBound + math.Sqrt(float64(dim))*0x1p-55,
	}
}

// Valid reports whether the bounds are usable (finite, Rel < 1). Invalid
// bounds would still be sound — every threshold degenerates to
// "keep/re-check everything" — but a caller holding them should prefer the
// plain float64 path.
func (b Bounds) Valid() bool {
	return b.Rel >= 0 && b.Rel < 1 && b.Abs >= 0 &&
		!math.IsInf(b.Rel, 0) && !math.IsInf(b.Abs, 0) &&
		!math.IsNaN(b.Rel) && !math.IsNaN(b.Abs)
}

// GeThresh returns T such that float64(d32) > T proves d64 ≥ x2.
// (From the contract, s64 < √x2 forces s32 < √x2·(1+Rel)+Abs.)
func (b Bounds) GeThresh(x2 float64) float64 {
	if math.IsInf(x2, 1) {
		return inf
	}
	t := math.Sqrt(x2)*(1+b.Rel) + b.Abs
	return t * t
}

// LtThresh returns T such that float64(d32) < T proves d64 < x2, or -1
// when no compact value can prove it (the provable band is empty).
func (b Bounds) LtThresh(x2 float64) float64 {
	t := math.Sqrt(x2)*(1-b.Rel) - b.Abs
	if !(t > 0) {
		return -1
	}
	return t * t
}

// KeepThresh returns the shortlist admission threshold for a running
// compact best b32 (a float64-promoted float32 squared distance): every
// row whose exact distance ties or beats the exact distance of the current
// compact-best row satisfies float64(d32) ≤ KeepThresh(b32). Rows above
// the threshold are provably not the nearest neighbor (nor tied for it).
func (b Bounds) KeepThresh(b32 float64) float64 {
	if !(b32 < inf) || !(b.Rel < 1) {
		return inf
	}
	s := math.Sqrt(b32)
	u := (s + b.Abs) / (1 - b.Rel) // ≥ exact distance of the compact-best row
	t := u*(1+b.Rel) + b.Abs       // ≥ compact distance of any row at least that close
	return t * t
}

// shortlistCompactAt is the shortlist length that triggers re-filtering
// against the tightened threshold. Genuine mass ties can exceed any fixed
// cap, so the limit doubles when a compaction fails to shrink the list.
const shortlistCompactAt = 256

// Shortlist collects candidate rows during a compact scan: every observed
// row whose compact distance does not provably exceed the best possible
// exact distance. Reset it with the scan's Bounds, feed it via the
// compact NN kernels, then Finish and re-rank the surviving rows with
// NNRows over the float64 data.
type Shortlist struct {
	Rows  []int32
	d2    []float32
	best  float64
	thr   float64
	bnd   Bounds
	limit int
}

// Reset prepares the shortlist for one scan under the given bounds,
// keeping backing storage.
func (sl *Shortlist) Reset(bnd Bounds) {
	sl.Rows = sl.Rows[:0]
	sl.d2 = sl.d2[:0]
	sl.best = inf
	sl.thr = inf
	sl.bnd = bnd
	sl.limit = shortlistCompactAt
}

// observe folds one scanned row into the shortlist. Comparisons are
// arranged so a NaN compact distance is admitted and never tightens the
// threshold.
func (sl *Shortlist) observe(row int32, d32 float32) {
	df := float64(d32)
	if df > sl.thr {
		return
	}
	sl.Rows = append(sl.Rows, row)
	sl.d2 = append(sl.d2, d32)
	if df < sl.best {
		sl.best = df
		sl.thr = sl.bnd.KeepThresh(df)
	}
	if len(sl.Rows) >= sl.limit {
		sl.refilter()
		if 2*len(sl.Rows) > sl.limit {
			sl.limit = 2 * len(sl.Rows)
		}
	}
}

// refilter drops rows excluded by the current threshold.
func (sl *Shortlist) refilter() {
	w := 0
	for i, r := range sl.Rows {
		if !(float64(sl.d2[i]) > sl.thr) {
			sl.Rows[w] = r
			sl.d2[w] = sl.d2[i]
			w++
		}
	}
	sl.Rows = sl.Rows[:w]
	sl.d2 = sl.d2[:w]
}

// Finish applies the final threshold and returns the surviving rows. The
// slice aliases the shortlist and is invalidated by the next Reset.
func (sl *Shortlist) Finish() []int32 {
	sl.refilter()
	return sl.Rows
}

// sqDist32 mirrors sqDistFlat in float32.
func sqDist32(a, b []float32, dim int) float32 {
	switch dim {
	case 2:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		s := d0 * d0
		s += d1 * d1
		return s
	case 3:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		s := d0 * d0
		s += d1 * d1
		s += d2 * d2
		return s
	}
	var s float32
	for t := 0; t < dim; t++ {
		d := a[t] - b[t]
		s += d * d
	}
	return s
}

// NNRows32 scans the listed rows of the float32 mirror, folding each into
// the shortlist (which the caller has Reset with this scan's Bounds). The
// admission reject — the overwhelmingly common case once a good best is
// seen — is hoisted out of observe so the hot loop pays one comparison per
// row; NaN fails the rejection test and reaches observe, as required.
func NNRows32(data32 []float32, dim int, q32 []float32, rows []int32, sl *Shortlist) {
	thr := sl.thr
	for _, r := range rows {
		i := int(r)
		d2 := sqDist32(q32, data32[i*dim:(i+1)*dim], dim)
		if float64(d2) > thr {
			continue
		}
		sl.observe(r, d2)
		thr = sl.thr
	}
}

// NNRange32 scans rows [lo, hi) of the float32 mirror into the shortlist.
func NNRange32(data32 []float32, dim int, q32 []float32, lo, hi int, sl *Shortlist) {
	thr := sl.thr
	for i := lo; i < hi; i++ {
		d2 := sqDist32(q32, data32[i*dim:(i+1)*dim], dim)
		if float64(d2) > thr {
			continue
		}
		sl.observe(int32(i), d2)
		thr = sl.thr
	}
}

// NNBatch32 is the multi-query variant of NNRange32: one pass over each
// row tile of the float32 mirror feeds every query's shortlist. qs32 is
// flat (len(sls)*dim); each shortlist must be Reset by the caller. Per
// query the rows arrive in ascending order, exactly as in NNRange32.
func NNBatch32(data32 []float32, dim int, qs32 []float32, lo, hi int, sls []Shortlist) {
	batchTiles(lo, hi, len(sls), func(qi, tLo, tHi int) {
		NNRange32(data32, dim, qs32[qi*dim:(qi+1)*dim], tLo, tHi, &sls[qi])
	})
}

// Q8LUT is the per-query lookup table of a quantized scan: Tab[d·256+c] is
// the float32 squared residual between query coordinate d and code c's
// dequantized value, so a row's compact squared distance is dim table
// loads and adds — no multiplies, and only one byte of coordinate data
// streamed per dimension.
type Q8LUT struct {
	Tab []float32
}

// BuildQ8LUT fills the table for query q (exact float64 coordinates)
// against the block's quantization parameters, reusing lut's storage.
func BuildQ8LUT(p points.Q8Params, q []float64, lut *Q8LUT) {
	dim := p.Dim()
	need := dim * 256
	if cap(lut.Tab) < need {
		lut.Tab = make([]float32, need)
	}
	lut.Tab = lut.Tab[:need]
	for d := 0; d < dim; d++ {
		qd, mn, sc := q[d], p.Min[d], p.Scale[d]
		row := lut.Tab[d*256 : (d+1)*256]
		for c := range row {
			diff := qd - (mn + sc*float64(c))
			row[c] = float32(diff * diff)
		}
	}
}

// q8Dist sums the table entries of one row's codes.
func q8Dist(codes []uint8, tab []float32) float32 {
	var s float32
	base := 0
	for _, c := range codes {
		s += tab[base+int(c)]
		base += 256
	}
	return s
}

// NNRowsQ8 scans the listed rows of the quantized block into the
// shortlist (Reset by the caller with Q8Bounds).
func NNRowsQ8(codes []uint8, dim int, lut *Q8LUT, rows []int32, sl *Shortlist) {
	thr := sl.thr
	for _, r := range rows {
		i := int(r)
		d2 := q8Dist(codes[i*dim:(i+1)*dim], lut.Tab)
		if float64(d2) > thr {
			continue
		}
		sl.observe(r, d2)
		thr = sl.thr
	}
}

// NNRangeQ8 scans rows [lo, hi) of the quantized block into the shortlist.
func NNRangeQ8(codes []uint8, dim int, lut *Q8LUT, lo, hi int, sl *Shortlist) {
	thr := sl.thr
	for i := lo; i < hi; i++ {
		d2 := q8Dist(codes[i*dim:(i+1)*dim], lut.Tab)
		if float64(d2) > thr {
			continue
		}
		sl.observe(int32(i), d2)
		thr = sl.thr
	}
}

// NNBatchQ8 is the multi-query variant of NNRangeQ8: luts and sls are
// parallel per-query slices, and one pass over each row tile of the code
// block feeds every query's shortlist.
func NNBatchQ8(codes []uint8, dim int, luts []Q8LUT, lo, hi int, sls []Shortlist) {
	batchTiles(lo, hi, len(sls), func(qi, tLo, tHi int) {
		NNRangeQ8(codes, dim, &luts[qi], tLo, tHi, &sls[qi])
	})
}
