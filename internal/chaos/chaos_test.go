package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDeterministicRandomness(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
	data1 := make([]byte, 64)
	data2 := make([]byte, 64)
	c, d := New(7), New(7)
	for i := 0; i < 10; i++ {
		c.FlipBit(data1)
		d.FlipBit(data2)
	}
	for i := range data1 {
		if data1[i] != data2[i] {
			t.Fatal("FlipBit not deterministic across same-seed harnesses")
		}
	}
}

func TestFlipBitActuallyFlips(t *testing.T) {
	c := New(1)
	data := make([]byte, 16)
	idx := c.FlipBit(data)
	if idx < 0 || idx >= len(data) {
		t.Fatalf("index %d out of range", idx)
	}
	if data[idx] == 0 {
		t.Fatal("no bit flipped")
	}
	if c.FlipBit(nil) != -1 {
		t.Fatal("empty data should return -1")
	}
}

func TestOnNthFiresExactlyOnce(t *testing.T) {
	fired := 0
	trig := OnNth(3, func() { fired++ })
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); trig() }()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1", fired)
	}
}

func TestNodeKillRestart(t *testing.T) {
	c := New(0)
	stops, starts := 0, 0
	n := c.Register("dn0", func() error { stops++; return nil }, func() error { starts++; return nil })
	if !n.Alive() {
		t.Fatal("node should start alive")
	}
	if err := n.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := n.Kill(); err != nil { // idempotent
		t.Fatal(err)
	}
	if n.Alive() || stops != 1 {
		t.Fatalf("after kill: alive=%v stops=%d", n.Alive(), stops)
	}
	if err := n.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := n.Restart(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !n.Alive() || starts != 1 {
		t.Fatalf("after restart: alive=%v starts=%d", n.Alive(), starts)
	}
	if c.Node("dn0") != n {
		t.Fatal("registry lookup failed")
	}
	if c.Node("nope") != nil {
		t.Fatal("unknown node should be nil")
	}
}

func TestFaultsDropCadence(t *testing.T) {
	f := &Faults{DropEvery: 3}
	hook := f.Hook()
	for i := 1; i <= 9; i++ {
		err := hook(int64(i))
		if i%3 == 0 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: want injected error, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if f.Calls() != 9 {
		t.Fatalf("Calls = %d, want 9", f.Calls())
	}
}

func TestFaultsDelayCadence(t *testing.T) {
	f := &Faults{DelayEvery: 2, Delay: 30 * time.Millisecond}
	hook := f.Hook()
	start := time.Now()
	hook(1) // no delay
	fast := time.Since(start)
	start = time.Now()
	hook(2) // delayed
	slow := time.Since(start)
	if slow < 25*time.Millisecond {
		t.Fatalf("2nd call not delayed (%v)", slow)
	}
	if fast > 20*time.Millisecond {
		t.Fatalf("1st call unexpectedly slow (%v)", fast)
	}
}
