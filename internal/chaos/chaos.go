// Package chaos is a deterministic fault-injection harness for drilling
// the distributed stack (internal/dfs, internal/mapreduce/rpcmr) in
// tests. Everything is seeded and count-based rather than time- or
// probability-based, so a failing run replays identically:
//
//   - Chaos: a seeded source of reproducible randomness (Intn, FlipBit);
//   - Node: a registered process-like unit (datanode, worker) with
//     Kill/Restart, built from stop/start closures;
//   - OnNth: a one-shot trigger that fires on the Nth call of a hook —
//     the building block for "kill the node during the 2nd read";
//   - Faults: deterministic drop/delay schedules for RPC-shaped hooks.
//
// The package deliberately imports nothing from the rest of the repo: the
// systems under test expose hook points (e.g. dfs.BlockHooks) and the
// harness supplies the closures.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks an error produced by the harness, so assertions can
// distinguish injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Chaos is a seeded fault-injection context. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Chaos struct {
	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*Node
}

// New returns a harness whose random choices are fully determined by
// seed.
func New(seed int64) *Chaos {
	return &Chaos{
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[string]*Node),
	}
}

// Intn returns a deterministic pseudo-random int in [0, n).
func (c *Chaos) Intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// FlipBit flips one seeded-random bit of data in place and returns the
// byte index it touched (-1 if data is empty) — simulated bit rot.
func (c *Chaos) FlipBit(data []byte) int {
	if len(data) == 0 {
		return -1
	}
	c.mu.Lock()
	i := c.rng.Intn(len(data))
	bit := c.rng.Intn(8)
	c.mu.Unlock()
	data[i] ^= 1 << bit
	return i
}

// Node is a registered process-like unit the harness can kill and
// restart. Kill and Restart are idempotent and safe to call from inside
// the victim's own hooks (the closures must not deadlock against the
// caller; dfs.DataNode.Close is safe this way).
type Node struct {
	name  string
	mu    sync.Mutex
	alive bool
	stop  func() error
	start func() error
}

// Register adds a kill/restart-able unit. stop must bring the unit down
// hard; start must bring a fresh instance up (it may be nil if the unit
// never restarts in the scenario).
func (c *Chaos) Register(name string, stop, start func() error) *Node {
	n := &Node{name: name, alive: true, stop: stop, start: start}
	c.mu.Lock()
	c.nodes[name] = n
	c.mu.Unlock()
	return n
}

// Node returns a registered node by name (nil if unknown).
func (c *Chaos) Node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// Kill stops the node if it is alive. Returns the stop error, if any.
func (n *Node) Kill() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil
	}
	n.alive = false
	if n.stop == nil {
		return nil
	}
	return n.stop()
}

// Restart brings a killed node back with its start closure.
func (n *Node) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive {
		return nil
	}
	if n.start == nil {
		return fmt.Errorf("chaos: node %s has no restart", n.name)
	}
	if err := n.start(); err != nil {
		return err
	}
	n.alive = true
	return nil
}

// Alive reports whether the node is currently up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Name returns the node's registered name.
func (n *Node) Name() string { return n.name }

// OnNth returns a trigger function that runs fn exactly once, on its Nth
// invocation (1-based). Wire it into a hook to fire a fault at a precise
// point in the execution: "on the 2nd block read, kill datanode 1".
func OnNth(n int64, fn func()) func() {
	if n < 1 {
		n = 1
	}
	var calls int64
	return func() {
		if atomic.AddInt64(&calls, 1) == n {
			fn()
		}
	}
}

// Faults is a deterministic schedule of RPC-shaped faults: every
// DropEvery-th call errors with ErrInjected, every DelayEvery-th call
// sleeps for Delay first. Zero fields disable that fault.
type Faults struct {
	DropEvery  int64
	DelayEvery int64
	Delay      time.Duration

	calls int64
}

// Hook returns the fault function to install at a call site. The id
// argument is only used in the injected error message.
func (f *Faults) Hook() func(id int64) error {
	return func(id int64) error {
		n := atomic.AddInt64(&f.calls, 1)
		if f.DelayEvery > 0 && n%f.DelayEvery == 0 {
			time.Sleep(f.Delay)
		}
		if f.DropEvery > 0 && n%f.DropEvery == 0 {
			return fmt.Errorf("%w: dropped call %d (id %d)", ErrInjected, n, id)
		}
		return nil
	}
}

// Calls reports how many times the hook has fired.
func (f *Faults) Calls() int64 { return atomic.LoadInt64(&f.calls) }
