// Package model defines the versioned cluster model artifact that bridges
// offline training and online serving: everything a query server needs to
// assign new points to the clusters an LSH-DDP (or Basic-DDP) run produced,
// frozen into one self-describing blob.
//
// An artifact carries the labeled dataset in flat SoA form (row i is point
// ID i, matching the repository's dense-ID invariant), the per-point
// densities ρ̂, the selected peak IDs, per-cluster halo border densities
// ρ̂_b, the cutoff d_c, and the LSH layout parameters (seed, M, π, w). The
// layouts themselves are never serialized: like the distributed workers,
// the serving side regenerates them deterministically from the parameters
// (lsh.NewLayouts is seeded), so train-time and serve-time bucketing agree
// by construction.
//
// On disk an artifact is a fixed header (magic, format version, CRC32-C of
// the body, body length) followed by the body: named sections in the same
// length-prefixed frame layout the shuffle spill files and the streaming
// transport use (mapreduce.AppendFrame / DecodeFrames). Readers verify the
// checksum before touching the body and reject unknown format versions, so
// a truncated or bit-flipped artifact surfaces as an error, never as a
// silently wrong model. Unknown section names are skipped for forward
// compatibility.
package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// magic identifies a cluster model artifact; Version is the format version
// this package reads and writes.
const (
	magic   = "DDPMODL1"
	Version = 1
)

// headerLen is magic(8) + version(u32) + crc32c(u32) + bodyLen(u64).
const headerLen = 8 + 4 + 4 + 8

// castagnoli is the CRC32-C table, the same polynomial the DFS block store
// checksums replicas with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Params are the LSH layout parameters of the training run. M == 0 means
// the model was exported from a run without LSH (Basic-DDP or the exact
// reference); such a model serves through the exact-scan path only.
type Params struct {
	Seed int64
	M    int
	Pi   int
	W    float64
}

// Model is one deserialized cluster model artifact.
type Model struct {
	// Name labels the training dataset (diagnostic only).
	Name string
	// Dim is the point dimensionality.
	Dim int
	// Dc is the cutoff distance of the training run.
	Dc float64
	// LSH holds the layout parameters to regenerate the hash groups.
	LSH Params
	// Data is the labeled dataset, row-major n×Dim; row i is point ID i.
	Data []float64
	// Rho is the per-point (approximate) density, indexed like Data rows.
	Rho []float64
	// Labels is the per-point cluster label, an index into Peaks.
	Labels []int32
	// Peaks holds the selected peak point IDs; cluster c's peak is row
	// Peaks[c].
	Peaks []int32
	// Border is the per-cluster halo border density ρ̂_b (len(Peaks)
	// entries). All-zero when the training run skipped halo detection, in
	// which case no served point is flagged halo.
	Border []float64

	// Optional compact mirrors of Data for the bandwidth-lean scan path
	// (serve.scan.precision f32/q8). Either may be empty — the serving
	// engine derives missing mirrors from Data — and old readers skip
	// their sections. Data stays the source of truth: compact scans
	// re-rank against it, so these only need to satisfy the points
	// package's conversion/quantization contracts.

	// Data32 is the float32 mirror of Data (same layout), or empty.
	Data32 []float32
	// Q8Codes is the 8-bit per-dimension affine quantization of Data
	// (same layout, one byte per coordinate), or empty. When present,
	// Q8Min/Q8Scale hold the per-dimension code parameters (Dim entries
	// each; see points.Q8Params).
	Q8Codes []uint8
	Q8Min   []float64
	Q8Scale []float64

	// RowIDs maps local row index → global point ID for a shard sub-model
	// exported by the fleet partitioner (internal/fleet). Empty means the
	// identity mapping: row i IS point ID i, the single-node invariant.
	// When present it must be strictly ascending, so local row order and
	// global ID order agree and the lowest-row-index NN tie rule gives the
	// same winner whether applied to local or global indices. Peaks and
	// Nearest-style fields inside the artifact stay LOCAL row indices; the
	// serving layer translates through GlobalID when answering.
	RowIDs []int32
}

// Q8Params returns the quantization parameters as the points package type.
func (m *Model) Q8Params() points.Q8Params {
	return points.Q8Params{Min: m.Q8Min, Scale: m.Q8Scale}
}

// BuildCompact populates the compact mirrors from Data: always the float32
// mirror, and the q8 code when the data is finitely quantizable (non-finite
// coordinates or an overflowing per-dimension spread leave Q8Codes empty).
func (m *Model) BuildCompact() {
	m.Data32, _ = points.ToFloat32(m.Data)
	codes, par, ok := points.QuantizeQ8(m.Data, m.Dim)
	if !ok {
		m.Q8Codes, m.Q8Min, m.Q8Scale = nil, nil, nil
		return
	}
	m.Q8Codes, m.Q8Min, m.Q8Scale = codes, par.Min, par.Scale
}

// N returns the number of stored points.
func (m *Model) N() int { return len(m.Labels) }

// GlobalID returns the global point ID of local row i: RowIDs[i] for a
// shard sub-model, or i itself for a full model.
func (m *Model) GlobalID(i int) int32 {
	if len(m.RowIDs) != 0 {
		return m.RowIDs[i]
	}
	return int32(i)
}

// NumClusters returns the number of clusters (selected peaks).
func (m *Model) NumClusters() int { return len(m.Peaks) }

// Row returns row i of the stored dataset, aliasing Data.
func (m *Model) Row(i int) points.Vector {
	return m.Data[i*m.Dim : (i+1)*m.Dim]
}

// Layouts regenerates the LSH layouts from the stored parameters, or nil
// when the model carries none (LSH.M == 0).
func (m *Model) Layouts() *lsh.Layouts {
	if m.LSH.M <= 0 {
		return nil
	}
	return lsh.NewLayouts(m.Dim, m.LSH.M, m.LSH.Pi, m.LSH.W, m.LSH.Seed)
}

// Validate checks the internal consistency of the model.
func (m *Model) Validate() error {
	n := m.N()
	if n == 0 {
		return fmt.Errorf("model: no points")
	}
	if m.Dim <= 0 {
		return fmt.Errorf("model: non-positive dim %d", m.Dim)
	}
	if len(m.Data) != n*m.Dim {
		return fmt.Errorf("model: %d coordinates for %d points of dim %d", len(m.Data), n, m.Dim)
	}
	if len(m.Rho) != n {
		return fmt.Errorf("model: %d densities for %d points", len(m.Rho), n)
	}
	if len(m.Peaks) == 0 {
		return fmt.Errorf("model: no peaks")
	}
	if len(m.Border) != len(m.Peaks) {
		return fmt.Errorf("model: %d border densities for %d clusters", len(m.Border), len(m.Peaks))
	}
	for c, p := range m.Peaks {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("model: peak %d has point ID %d, want [0,%d)", c, p, n)
		}
	}
	for i, l := range m.Labels {
		if l < 0 || int(l) >= len(m.Peaks) {
			return fmt.Errorf("model: point %d has label %d, want [0,%d)", i, l, len(m.Peaks))
		}
	}
	if m.Dc <= 0 {
		return fmt.Errorf("model: non-positive d_c %v", m.Dc)
	}
	if m.LSH.M > 0 && (m.LSH.Pi <= 0 || m.LSH.W <= 0) {
		return fmt.Errorf("model: LSH params M=%d pi=%d w=%v are inconsistent", m.LSH.M, m.LSH.Pi, m.LSH.W)
	}
	if len(m.Data32) != 0 && len(m.Data32) != n*m.Dim {
		return fmt.Errorf("model: %d float32 mirror coordinates for %d points of dim %d", len(m.Data32), n, m.Dim)
	}
	if len(m.Q8Codes) != 0 {
		if len(m.Q8Codes) != n*m.Dim {
			return fmt.Errorf("model: %d q8 codes for %d points of dim %d", len(m.Q8Codes), n, m.Dim)
		}
		if !m.Q8Params().Valid(m.Dim) {
			return fmt.Errorf("model: q8 quantization parameters are invalid for dim %d", m.Dim)
		}
	} else if len(m.Q8Min) != 0 || len(m.Q8Scale) != 0 {
		return fmt.Errorf("model: q8 parameters without q8 codes")
	}
	if len(m.RowIDs) != 0 {
		if len(m.RowIDs) != n {
			return fmt.Errorf("model: %d row IDs for %d points", len(m.RowIDs), n)
		}
		for i, id := range m.RowIDs {
			if id < 0 || (i > 0 && id <= m.RowIDs[i-1]) {
				return fmt.Errorf("model: row IDs must be non-negative and strictly ascending (row %d has ID %d)", i, id)
			}
		}
	}
	return nil
}

// Section names of the framed body. The compact sections (points32,
// q8codes, q8params) are optional additions of the same format version:
// readers that predate them fall through the unknown-section skip, and the
// body CRC covers them like everything else.
const (
	secMeta     = "meta"
	secPoints   = "points"
	secRho      = "rho"
	secLabels   = "labels"
	secPeaks    = "peaks"
	secBorder   = "border"
	secPoints32 = "points32"
	secQ8Codes  = "q8codes"
	secQ8Params = "q8params" // Dim mins then Dim scales, f64 each
	secRowIDs   = "rowids"   // local row → global point ID (shard sub-models)
)

// Encode serializes the model: header (magic, version, CRC32-C, body
// length) followed by the framed sections.
func (m *Model) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	body := mapreduce.AppendFrame(nil, mapreduce.Pair{Key: secMeta, Value: m.encodeMeta()})
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secPoints, Value: encodeFloats(m.Data)})
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secRho, Value: encodeFloats(m.Rho)})
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secLabels, Value: encodeInt32s(m.Labels)})
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secPeaks, Value: encodeInt32s(m.Peaks)})
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secBorder, Value: encodeFloats(m.Border)})
	if len(m.Data32) != 0 {
		body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secPoints32, Value: encodeFloat32s(m.Data32)})
	}
	if len(m.Q8Codes) != 0 {
		body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secQ8Codes, Value: m.Q8Codes})
		params := encodeFloats(m.Q8Min)
		params = append(params, encodeFloats(m.Q8Scale)...)
		body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secQ8Params, Value: params})
	}
	if len(m.RowIDs) != 0 {
		body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: secRowIDs, Value: encodeInt32s(m.RowIDs)})
	}

	out := make([]byte, 0, headerLen+len(body))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	return append(out, body...), nil
}

// Decode parses and verifies an encoded model: magic, format version, and
// body checksum are checked before any section is interpreted.
func Decode(data []byte) (*Model, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("model: artifact is %d bytes, shorter than the %d-byte header", len(data), headerLen)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("model: bad magic %q (not a cluster model artifact)", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("model: unsupported format version %d (this build reads version %d)", v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(data[12:])
	bodyLen := binary.LittleEndian.Uint64(data[16:])
	body := data[headerLen:]
	if uint64(len(body)) != bodyLen {
		return nil, fmt.Errorf("model: body is %d bytes, header says %d (truncated artifact)", len(body), bodyLen)
	}
	if got := crc32.Checksum(body, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("model: checksum mismatch (stored %08x, computed %08x): artifact is corrupt", wantCRC, got)
	}
	frames, err := mapreduce.DecodeFrames(nil, body)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	m := &Model{}
	for _, f := range frames {
		switch f.Key {
		case secMeta:
			if err := m.decodeMeta(f.Value); err != nil {
				return nil, err
			}
		case secPoints:
			m.Data = decodeFloats(f.Value)
		case secRho:
			m.Rho = decodeFloats(f.Value)
		case secLabels:
			m.Labels = decodeInt32s(f.Value)
		case secPeaks:
			m.Peaks = decodeInt32s(f.Value)
		case secBorder:
			m.Border = decodeFloats(f.Value)
		case secPoints32:
			m.Data32 = decodeFloat32s(f.Value)
		case secQ8Codes:
			m.Q8Codes = append([]uint8(nil), f.Value...)
		case secQ8Params:
			params := decodeFloats(f.Value)
			if len(params)%2 != 0 {
				return nil, fmt.Errorf("model: q8params section holds %d values, want an even count", len(params))
			}
			m.Q8Min = params[:len(params)/2]
			m.Q8Scale = params[len(params)/2:]
		case secRowIDs:
			m.RowIDs = decodeInt32s(f.Value)
		default:
			// Unknown section: written by a newer minor revision, skip.
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// meta section: u32 dim | f64 dc | i64 seed | u32 m | u32 pi | f64 w | name.
func (m *Model) encodeMeta() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(m.Dim))
	buf = points.AppendFloat64(buf, m.Dc)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.LSH.Seed))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.LSH.M))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.LSH.Pi))
	buf = points.AppendFloat64(buf, m.LSH.W)
	return append(buf, m.Name...)
}

func (m *Model) decodeMeta(v []byte) error {
	if len(v) < 36 {
		return fmt.Errorf("model: meta section is %d bytes, want at least 36", len(v))
	}
	m.Dim = int(binary.LittleEndian.Uint32(v))
	m.Dc = points.DecodeFloat64(v[4:])
	m.LSH.Seed = int64(binary.LittleEndian.Uint64(v[12:]))
	m.LSH.M = int(binary.LittleEndian.Uint32(v[20:]))
	m.LSH.Pi = int(binary.LittleEndian.Uint32(v[24:]))
	m.LSH.W = points.DecodeFloat64(v[28:])
	m.Name = string(v[36:])
	return nil
}

func encodeFloats(xs []float64) []byte {
	buf := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		buf = points.AppendFloat64(buf, x)
	}
	return buf
}

func decodeFloats(v []byte) []float64 {
	xs := make([]float64, len(v)/8)
	for i := range xs {
		xs[i] = points.DecodeFloat64(v[8*i:])
	}
	return xs
}

func encodeFloat32s(xs []float32) []byte {
	buf := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

func decodeFloat32s(v []byte) []float32 {
	xs := make([]float32, len(v)/4)
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(v[4*i:]))
	}
	return xs
}

func encodeInt32s(xs []int32) []byte {
	buf := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

func decodeInt32s(v []byte) []int32 {
	xs := make([]int32, len(v)/4)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(v[4*i:]))
	}
	return xs
}

// Write serializes the model to w.
func (m *Model) Write(w io.Writer) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read decodes a model from r (reading to EOF).
func Read(r io.Reader) (*Model, error) {
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return Decode(buf.Bytes())
}

// WriteFile atomically-ish writes the model to a local file (temp file in
// the same directory, then rename).
func (m *Model) WriteFile(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile loads and verifies a model from a local file.
func ReadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
