package model_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/model"
)

// testModel builds a small, fully populated model.
func testModel() *model.Model {
	return &model.Model{
		Name: "unit",
		Dim:  2,
		Dc:   0.75,
		LSH:  model.Params{Seed: 42, M: 4, Pi: 3, W: 1.5},
		Data: []float64{
			0, 0, 1, 0, 0, 1,
			10, 10, 11, 10, 10, 11,
		},
		Rho:    []float64{3, 2, 2, 3, 2, 2},
		Labels: []int32{0, 0, 0, 1, 1, 1},
		Peaks:  []int32{0, 3},
		Border: []float64{1.5, 1.25},
	}
}

func mustEqual(t *testing.T, got, want *model.Model) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRoundTripFile(t *testing.T) {
	m := testModel()
	path := filepath.Join(t.TempDir(), "m.ddpm")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := model.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, m)
}

func TestRoundTripDFS(t *testing.T) {
	m := testModel()
	fs := dfs.NewMemFS()
	if err := dfsio.SaveModel(fs, "/models/m.ddpm", m); err != nil {
		t.Fatal(err)
	}
	got, err := dfsio.LoadModel(fs, "/models/m.ddpm")
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, m)
}

// Layouts must regenerate identically from the stored parameters: same keys
// for the same point before and after a round trip.
func TestLayoutsRegenerate(t *testing.T) {
	m := testModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Layouts().Keys(m.Row(0))
	if gotKeys := got.Layouts().Keys(got.Row(0)); !reflect.DeepEqual(gotKeys, want) {
		t.Fatalf("regenerated layouts disagree: %v vs %v", gotKeys, want)
	}
}

func TestNoLSHModel(t *testing.T) {
	m := testModel()
	m.LSH = model.Params{}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layouts() != nil {
		t.Fatal("model without LSH params should have nil layouts")
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := testModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every body byte position sampled across the artifact;
	// each must surface as a checksum error, never as a silently wrong model.
	for pos := 16 + 8; pos < len(data); pos += 97 {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		_, err := model.Decode(corrupt)
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", pos)
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("bit flip at %d: got %v, want checksum error", pos, err)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	m := testModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := model.Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[8] = 0xFF // format version
	if _, err := model.Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: got %v", err)
	}

	if _, err := model.Decode(data[:len(data)-3]); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation: got %v", err)
	}
}

func TestValidateRejectsInconsistency(t *testing.T) {
	cases := map[string]func(*model.Model){
		"no points":    func(m *model.Model) { m.Labels = nil; m.Rho = nil; m.Data = nil },
		"bad label":    func(m *model.Model) { m.Labels[2] = 99 },
		"bad peak":     func(m *model.Model) { m.Peaks[0] = -1 },
		"border count": func(m *model.Model) { m.Border = m.Border[:1] },
		"bad dc":       func(m *model.Model) { m.Dc = 0 },
		"coord count":  func(m *model.Model) { m.Data = m.Data[:5] },
	}
	for name, mutate := range cases {
		m := testModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an inconsistent model", name)
		}
	}
}
