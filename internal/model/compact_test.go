package model_test

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
	"repro/internal/model"
)

// compactModel is testModel with the optional f32/q8 sections populated.
func compactModel() *model.Model {
	m := testModel()
	m.BuildCompact()
	return m
}

func TestBuildCompact(t *testing.T) {
	m := compactModel()
	if len(m.Data32) != len(m.Data) {
		t.Fatalf("Data32 has %d entries, want %d", len(m.Data32), len(m.Data))
	}
	for i, v := range m.Data {
		if float64(m.Data32[i]) != v { // small integer coords convert exactly
			t.Fatalf("Data32[%d] = %v, want %v", i, m.Data32[i], v)
		}
	}
	if len(m.Q8Codes) != len(m.Data) {
		t.Fatalf("Q8Codes has %d entries, want %d", len(m.Q8Codes), len(m.Data))
	}
	if !m.Q8Params().Valid(m.Dim) {
		t.Fatal("q8 params invalid")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dequantized coordinates stay within the half-step residual bound.
	p := m.Q8Params()
	for i := range m.Data {
		d := i % m.Dim
		got := p.Dequant(d, m.Q8Codes[i])
		if diff := math.Abs(got - m.Data[i]); diff > p.Scale[d]/2*(1+1e-9) {
			t.Fatalf("coordinate %d: dequant residual %g > %g", i, diff, p.Scale[d]/2)
		}
	}
}

func TestBuildCompactUnquantizable(t *testing.T) {
	m := testModel()
	m.Data[3] = math.MaxFloat64
	m.Data[5] = -math.MaxFloat64 // spread overflows the q8 scale
	m.BuildCompact()
	if len(m.Data32) == 0 {
		t.Fatal("f32 mirror must always build")
	}
	if len(m.Q8Codes) != 0 || len(m.Q8Min) != 0 {
		t.Fatal("unquantizable data must leave the q8 section empty")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripCompactFile(t *testing.T) {
	m := compactModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("compact round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestRoundTripCompactDFS(t *testing.T) {
	m := compactModel()
	fs := dfs.NewMemFS()
	if err := dfsio.SaveModel(fs, "/models/c.ddpm", m); err != nil {
		t.Fatal(err)
	}
	got, err := dfsio.LoadModel(fs, "/models/c.ddpm")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("compact model did not survive the DFS round trip")
	}
}

// TestUnknownSectionSkipped pins the forward-compatibility contract the
// compact sections rely on: a reader that does not know a section name
// (as pre-compact readers do not know points32/q8codes/q8params) must
// skip it and still decode the rest of the artifact.
func TestUnknownSectionSkipped(t *testing.T) {
	m := testModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	body := data[24:]
	body = mapreduce.AppendFrame(body, mapreduce.Pair{Key: "sec-from-the-future", Value: []byte{1, 2, 3}})
	reframed := append([]byte(nil), data[:24]...)
	binary.LittleEndian.PutUint32(reframed[12:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	binary.LittleEndian.PutUint64(reframed[16:], uint64(len(body)))
	reframed = append(reframed, body...)

	got, err := model.Decode(reframed)
	if err != nil {
		t.Fatalf("unknown section broke decoding: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("model with an extra unknown section decoded differently")
	}
}

// TestCompactCorruptionQuarantined flips bits inside the compact sections;
// the body CRC covers them, so every flip must be rejected.
func TestCompactCorruptionQuarantined(t *testing.T) {
	m := compactModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	plainLen := func() int {
		d, err := testModel().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	}()
	if len(data) <= plainLen {
		t.Fatal("compact sections added no bytes?")
	}
	// Flip bits only in the tail the compact sections occupy.
	for pos := plainLen; pos < len(data); pos += 13 {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x01
		if _, err := model.Decode(corrupt); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("bit flip at %d in a compact section: got %v, want checksum error", pos, err)
		}
	}
}

func TestValidateRejectsBadCompact(t *testing.T) {
	cases := map[string]func(*model.Model){
		"short mirror":       func(m *model.Model) { m.Data32 = m.Data32[:5] },
		"short codes":        func(m *model.Model) { m.Q8Codes = m.Q8Codes[:5] },
		"params sans codes":  func(m *model.Model) { m.Q8Codes = nil },
		"bad param dim":      func(m *model.Model) { m.Q8Min = m.Q8Min[:1] },
		"non-finite param":   func(m *model.Model) { m.Q8Scale[0] = math.NaN() },
		"negative q8 scale":  func(m *model.Model) { m.Q8Scale[0] = -1 },
		"infinite q8 offset": func(m *model.Model) { m.Q8Min[0] = math.Inf(1) },
	}
	for name, mutate := range cases {
		m := compactModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken compact section", name)
		}
	}
}
