# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test test-short vet race bench experiments examples clean

all: check

# The full gate: compile everything, vet, run the test suite, and re-run
# the MapReduce engines (local + rpcmr) under the race detector.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The engines are the concurrency-heavy core; keep them race-clean.
race:
	$(GO) test -race ./internal/mapreduce/... ./internal/mapreduce/rpcmr/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table/figure of the paper (several minutes at full scale).
experiments:
	$(GO) run ./cmd/dpbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/halo
	$(GO) run ./examples/decisiongraph
	$(GO) run ./examples/accuracy
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
