# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test test-short vet doccheck race bench bench-hot bench-scan bench-scan-smoke bench-shuffle bench-serve bench-fleet bench-fleet-smoke bench-ingest bench-ingest-smoke bench-knn bench-knn-smoke bench-dag bench-dag-smoke experiments examples clean

all: check

# The full gate: compile everything, vet, enforce package docs (and the
# README knob reference), run the test suite, re-run the concurrency-heavy
# packages under the race detector, and smoke the DAG scheduler's
# cache-reuse win, the compact scan kernels, the sharded-fleet serving
# path, the streaming-ingest path, and the kNN-join (both arms,
# bit-identity checked).
check: build vet doccheck test race bench-dag-smoke bench-scan-smoke bench-fleet-smoke bench-ingest-smoke bench-knn-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail on any package missing a package-level doc comment, or any
# registered Conf* knob missing from README.md's configuration reference.
doccheck:
	$(GO) run ./cmd/doccheck

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The engines are the concurrency-heavy core; keep them race-clean. The
# kernels package rides along for its intra-partition parallel merge path,
# dfs/chaos for the heartbeat + re-replication machinery and its harness,
# serve/model for the query server's batching, shedding, and hot reload,
# fleet for the router's scatter-gather, hedging, and liveness prober.
# ./internal/mapreduce/... recursively covers the dag scheduler package,
# whose concurrent node dispatch is the newest race surface; ingest for the
# WAL-backed store's concurrent writers, query merges, and compaction swap.
race:
	$(GO) test -race ./internal/mapreduce/... ./internal/mapreduce/rpcmr/... ./internal/kernels/... ./internal/points/... ./internal/dfs/... ./internal/chaos/... ./internal/serve/... ./internal/model/... ./internal/fleet/... ./internal/ingest/... ./internal/knnjoin/...

bench:
	$(GO) test -bench=. -benchmem .

# Hot-path micro-benchmarks (dense kernels, shuffle sort, group decode)
# with pinned benchtime/count so runs feed straight into benchstat:
#
#	make bench-hot > old.txt ... make bench-hot > new.txt
#	benchstat old.txt new.txt
BENCHTIME ?= 1s
BENCHCOUNT ?= 6
bench-hot:
	$(GO) test -bench 'Rho|Delta|Decode' -run xxx -benchmem \
		-benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/kernels/ ./internal/points/
	$(GO) test -bench 'Sort|Shuffle' -run xxx -benchmem \
		-benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/mapreduce/

# Compact scan-path micro-benchmarks: f64 vs f32 vs q8 single-query NN,
# multi-query NNBatch, top-k selection, and compact ρ accumulation
# (numbers feed BENCH_PR7.json / BENCH_PR10.json alongside the end-to-end
# sweeps).
bench-scan:
	$(GO) test -bench 'NNScan|NNBatch|CompactRho|TopK' -run '^$$' -benchmem \
		-benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/kernels/

# One fast iteration per scan benchmark for the check gate and CI: catches
# a compact kernel that stops compiling or panics on real shapes.
bench-scan-smoke:
	$(GO) test -bench 'NNScan|NNBatch|CompactRho|TopK' -run '^$$' -benchtime 1x ./internal/kernels/

# Shuffle transport comparison: legacy gob-RPC vs framed-TCP streaming vs
# framed+flate, at 1/16/64MB partitions (numbers recorded in BENCH_PR3.json).
bench-shuffle:
	$(GO) test -bench BenchmarkShuffleTransport -run '^$$' -benchmem \
		-benchtime $(BENCHTIME) ./internal/mapreduce/rpcmr/

# Online-serving benchmark: train a model in-process (built directly from
# blob geometry at ≥100k points), then sweep closed-loop client counts over
# the LSH-pruned and exact-scan serving paths at each scan precision
# (numbers recorded in BENCH_PR5.json / BENCH_PR7.json). The queue bound is
# kept below the top client count so the shed path is exercised too.
# Override size and shape per run:
#
#	make bench-serve SERVE_N=1000000 SERVE_DIM=8 SERVE_PRECISIONS=f64,f32,q8
SERVE_N ?= 50000
SERVE_DIM ?= 8
SERVE_PRECISIONS ?= f64,f32,q8
bench-serve:
	$(GO) run ./cmd/serveload -self -n $(SERVE_N) -dim $(SERVE_DIM) -clients 1,8,64 \
		-queue 32 -duration 3s -precisions $(SERVE_PRECISIONS) -json

# Sharded-fleet benchmark: partition one in-process model across shard
# fleets of each size, front them with the LSH-aware router, and drive the
# same closed-loop clients through it. Reports wall QPS, mean fan-out, the
# per-shard request/busy-time breakdown, and node_qps (requests divided by
# the busiest shard's busy seconds — the per-node throughput a deployment
# with one shard per machine would see; on this single box all shards share
# the CPU, so wall QPS alone cannot show the scaling). Numbers are recorded
# in BENCH_PR8.json:
#
#	make bench-fleet FLEET_N=1000000 FLEET_DIM=8
FLEET_N ?= 1000000
FLEET_DIM ?= 8
FLEET_K ?= 16
FLEET_SHARDS ?= 1,2,4
FLEET_CLIENTS ?= 64
FLEET_DURATION ?= 15s
# The queue stays above the client count here, unlike bench-serve: a fleet
# query completes only when every owning shard admits it, so running at the
# shed point charges busy time for scans whose sibling shard shed the
# request — wasted work that poisons the node_qps capacity measurement.
bench-fleet:
	$(GO) run ./cmd/serveload -self -n $(FLEET_N) -dim $(FLEET_DIM) -k $(FLEET_K) \
		-fleet-shards $(FLEET_SHARDS) -clients $(FLEET_CLIENTS) \
		-queue 128 -duration $(FLEET_DURATION) -json

# Small fixed-size variant for the check gate and CI: catches a fleet path
# that stops partitioning, routing, or merging, without the full-scale cost.
bench-fleet-smoke:
	$(GO) run ./cmd/serveload -self -n 20000 -dim 4 -k 8 \
		-fleet-shards 1,2 -clients 8 -duration 1s -json > /dev/null

# Mixed read/write benchmark: the in-process server fronts a streaming
# ingest.Store, and -ingest-frac of each client's requests write instead of
# read, with the background compactor folding the delta into new base
# artifacts as the sweep runs. Reports read and ingest QPS/p99 separately
# plus compactions per window (numbers recorded in BENCH_PR9.json):
#
#	make bench-ingest INGEST_N=1000000 INGEST_DIM=8
INGEST_N ?= 1000000
INGEST_DIM ?= 8
INGEST_K ?= 16
INGEST_FRAC ?= 0.1
INGEST_CLIENTS ?= 64
INGEST_DURATION ?= 15s
bench-ingest:
	$(GO) run ./cmd/serveload -self -n $(INGEST_N) -dim $(INGEST_DIM) -k $(INGEST_K) \
		-ingest-frac $(INGEST_FRAC) -ingest-compact-interval 5s \
		-clients $(INGEST_CLIENTS) -queue 128 -duration $(INGEST_DURATION) -json

# Small fixed-size variant for the check gate and CI: catches an ingest
# path that stops acking, merging, or compacting, without the full cost.
bench-ingest-smoke:
	$(GO) run ./cmd/serveload -self -n 20000 -dim 4 -k 8 \
		-ingest-frac 0.1 -ingest-compact-interval 500ms \
		-clients 8 -duration 1s -json > /dev/null

# kNN-join benchmark: LSH-bucketed join vs the broadcast-naive exact join
# on one generated R/S pair, bit-identity verified between the arms
# (numbers recorded in BENCH_PR10.json):
#
#	make bench-knn KNN_N=100000 KNN_NQ=10000 KNN_DIM=8 KNN_K=10
KNN_N ?= 100000
KNN_NQ ?= 10000
KNN_DIM ?= 8
KNN_K ?= 10
bench-knn:
	$(GO) run ./cmd/knnbench -n $(KNN_N) -nq $(KNN_NQ) -dim $(KNN_DIM) -k $(KNN_K) -json

# Small fixed-size variant for the check gate and CI: runs both join arms
# end to end and fails loudly if they stop agreeing bit for bit.
bench-knn-smoke:
	$(GO) run ./cmd/knnbench -n 3000 -nq 300 -dim 4 -k 5 -json > /dev/null

# DAG scheduler comparison: hand-sequenced-equivalent fresh sessions vs a
# shared cached session, over repeated LSH-DDP + halo runs (wall, job
# count, staged bytes; numbers recorded in BENCH_PR6.json).
DAGBENCH_N ?= 20000
DAGBENCH_RUNS ?= 3
bench-dag:
	$(GO) run ./cmd/dagbench -n $(DAGBENCH_N) -runs $(DAGBENCH_RUNS)

# Small fixed-size variant of bench-dag for the check gate and CI: fails
# loudly if the scheduler or its cache regress into re-executing work.
bench-dag-smoke:
	$(GO) run ./cmd/dagbench -n 3000 -runs 2

# Regenerate every table/figure of the paper (several minutes at full scale).
experiments:
	$(GO) run ./cmd/dpbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/halo
	$(GO) run ./examples/decisiongraph
	$(GO) run ./examples/accuracy
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
