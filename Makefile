# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short vet bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table/figure of the paper (several minutes at full scale).
experiments:
	$(GO) run ./cmd/dpbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/halo
	$(GO) run ./examples/decisiongraph
	$(GO) run ./examples/accuracy
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
