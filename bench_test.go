// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (wrapping internal/experiments at a
// reduced scale so `go test -bench=.` completes in minutes), plus
// micro-benchmarks of the substrates the pipelines are built from.
//
// Regenerate the full-scale evaluation with cmd/dpbench instead:
//
//	go run ./cmd/dpbench -exp all
package repro

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/eddpc"
	"repro/internal/experiments"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/points"
)

func init() {
	rpcmr.RegisterJobs(core.JobFactories())
	rpcmr.RegisterJobs(core.HaloJobFactories())
}

// benchOpt is the reduced experiment scale for benchmarks.
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 8, Seed: 42}
}

// benchExperiment runs one experiment per iteration and logs its report
// once (with -v).
func benchExperiment(b *testing.B, run func(experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := run(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

// ---- One benchmark per table/figure ----

func BenchmarkTable2Datasets(b *testing.B) { benchExperiment(b, experiments.ExpTable2) }

func BenchmarkFig7DecisionGraph(b *testing.B) { benchExperiment(b, experiments.ExpFig7) }

func BenchmarkFig8Quality(b *testing.B) { benchExperiment(b, experiments.ExpFig8) }

func BenchmarkFig9Accuracy(b *testing.B) { benchExperiment(b, experiments.ExpFig9) }

func BenchmarkFig10Runtime(b *testing.B) { benchExperiment(b, experiments.ExpFig10) }

func BenchmarkTable4EDDPC(b *testing.B) { benchExperiment(b, experiments.ExpTable4) }

func BenchmarkFig11KMeans(b *testing.B) { benchExperiment(b, experiments.ExpFig11) }

func BenchmarkFig12Params(b *testing.B) { benchExperiment(b, experiments.ExpFig12) }

func BenchmarkEC2Extrapolation(b *testing.B) { benchExperiment(b, experiments.ExpEC2) }

func BenchmarkAblations(b *testing.B) { benchExperiment(b, experiments.ExpAblation) }

// ---- Algorithm benchmarks with cost metrics ----

// benchAlgo reports the paper's cost counters as benchmark metrics.
func reportStats(b *testing.B, st *core.Stats) {
	b.ReportMetric(float64(st.ShuffleBytes)/(1<<20), "shuffleMB")
	b.ReportMetric(float64(st.DistanceComputations), "dist")
}

func benchDataset(n int) *points.Dataset { return dataset.BigCross(n, 42) }

func BenchmarkBasicDDP(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(n)
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
					Config: core.Config{Seed: 1, DcPercentile: 0.02},
				})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, &st)
		})
	}
}

func BenchmarkLSHDDP(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(n)
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
					Config:   core.Config{Seed: 1, DcPercentile: 0.02},
					Accuracy: 0.99, M: 10, Pi: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, &st)
		})
	}
}

func BenchmarkEDDPC(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(n)
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := eddpc.Run(context.Background(), ds, eddpc.Config{
					Config: core.Config{Seed: 1, DcPercentile: 0.02},
				})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, &st)
		})
	}
}

func BenchmarkExactSequentialDP(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(n)
			dc := dp.CutoffByPercentile(ds, 0.02, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dp.Compute(ds, dc, dp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkSqDist(b *testing.B) {
	for _, dim := range []int{2, 57, 300} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			rng := points.NewRand(1)
			x := make(points.Vector, dim)
			y := make(points.Vector, dim)
			for i := range x {
				x[i], y[i] = rng.Float64(), rng.Float64()
			}
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += points.SqDist(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkLSHGroupKey(b *testing.B) {
	for _, pi := range []int{3, 10} {
		b.Run(fmt.Sprintf("pi=%d", pi), func(b *testing.B) {
			rng := points.NewRand(1)
			g := lsh.NewGroup(57, pi, 4.0, rng)
			p := make(points.Vector, 57)
			for i := range p {
				p[i] = rng.Float64() * 100
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.Key(p)
			}
		})
	}
}

func BenchmarkPointCodec(b *testing.B) {
	p := points.Point{ID: 7, Pos: make(points.Vector, 57)}
	for i := range p.Pos {
		p.Pos[i] = float64(i) * 1.5
	}
	buf := points.EncodePoint(p)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = points.AppendPoint(buf[:0], p)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := points.DecodePoint(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMapReduceWordcount(b *testing.B) {
	input := make([]mapreduce.Pair, 2000)
	for i := range input {
		input[i] = mapreduce.Pair{Value: []byte(fmt.Sprintf("w%d x%d y%d z%d", i%7, i%13, i%29, i%97))}
	}
	job := &mapreduce.Job{
		Name: "bench-wordcount",
		Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				out.Emit(w, []byte("1"))
			}
			return nil
		},
		Combine: benchSum,
		Reduce:  benchSum,
	}
	eng := &mapreduce.LocalEngine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), job, input); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSum(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		total += n
	}
	out.Emit(key, []byte(strconv.Itoa(total)))
	return nil
}

func BenchmarkShuffleSpill(b *testing.B) {
	// The same job with and without spill-to-disk, to price the external
	// sort.
	input := make([]mapreduce.Pair, 5000)
	for i := range input {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i % 64), Value: make([]byte, 128)}
	}
	job := &mapreduce.Job{
		Name: "bench-spill",
		Map: func(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
			out.Emit(key, value)
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			out.Emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
	b.Run("in-memory", func(b *testing.B) {
		eng := &mapreduce.LocalEngine{}
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), job, input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spill-64k", func(b *testing.B) {
		eng := &mapreduce.LocalEngine{SpillThresholdBytes: 64 << 10}
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), job, input); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWidthSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lsh.SolveWidth(0.99, 1.5, 3, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension benchmarks ----

func BenchmarkGaussianKernelLSHDDP(b *testing.B) {
	ds := benchDataset(2000)
	var st core.Stats
	for i := 0; i < b.N; i++ {
		res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
			Config:   core.Config{Seed: 1, DcPercentile: 0.02, Kernel: dp.KernelGaussian},
			Accuracy: 0.99, M: 10, Pi: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		st = res.Stats
	}
	reportStats(b, &st)
}

func BenchmarkLSHHalo(b *testing.B) {
	ds := benchDataset(2000)
	cfg := core.LSHConfig{
		Config:   core.Config{Seed: 1, DcPercentile: 0.02},
		Accuracy: 0.99, M: 10, Pi: 3,
	}
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	_, labels, err := res.Cluster(ds, core.SelectTopK(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxPartitionCap(b *testing.B) {
	ds := dataset.Blobs("bench-cap", 4000, 4, 2, 40, 6, 13)
	for _, cap := range []int{0, 500} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
					Config:       core.Config{Seed: 1, DcPercentile: 0.02},
					Accuracy:     0.99,
					M:            8,
					Pi:           3,
					MaxPartition: cap,
				})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, &st)
		})
	}
}

// BenchmarkDistributedEngine prices the TCP cluster against the in-process
// engine on the same job (cluster boot excluded from the timer).
func BenchmarkDistributedEngine(b *testing.B) {
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 2; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	ds := benchDataset(1000)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	run := func(b *testing.B, eng mapreduce.Engine) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
				Config: core.Config{Engine: eng, Dc: dc, Seed: 1},
				M:      5, Pi: 3, Accuracy: 0.95,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("local", func(b *testing.B) { run(b, &mapreduce.LocalEngine{Parallelism: 2}) })
	b.Run("rpc-cluster", func(b *testing.B) { run(b, master) })
}
